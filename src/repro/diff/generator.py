"""Random program generator for differential fuzzing.

Programs are built from *macros* — short, self-contained instruction
sequences with concrete parameters — wrapped in a counted loop with a
deterministic prologue and an output epilogue.  The representation is
split in two so divergences can be shrunk:

* :func:`generate` rolls a :class:`GenProgram` — a frozen descriptor
  (seed, profile, loop count, tuple of macro descriptors) — using only
  the seed for randomness.
* :func:`build_program` deterministically turns a descriptor into a
  validated :class:`~repro.isa.program.Program`.  The shrinker edits
  descriptors (dropping macros, lowering the loop count) and rebuilds.

Macros keep every tier inside its defined envelope by construction:
integer results are masked to 20 bits (vector int64 vs interpreter
bignum), shift amounts to 3 bits, divisors are forced odd-nonzero,
``FEXP``/``FSIN``/``FCOS`` inputs are clamped, ``FSQRT``/``FLOG`` see
absolute values, and ``FTOI`` inputs are NaN-stripped and clamped.  NaN
itself is synthesized at runtime (``inf - inf``) rather than as an
immediate — the compiled tier renders immediates with ``repr`` — and is
fed only to ``FMIN``/``FMAX``, whose NaN semantics are part of the
cross-tier contract.

Two profiles:

* ``"full"`` — everything the ISA has: memory traffic, ``CALL``/``RET``,
  ``RANDN``, plus all of the vector profile.
* ``"vector"`` — only ops inside the vector tier's envelope, so the
  lockstep harness can include the ``vector`` tier.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import F, R

#: Integer working registers (indices into R); R0/R7/R8/R9 are reserved
#: for the loop counter, loop bound, address scratch and macro temp.
_IREGS = (1, 2, 3, 4, 5, 6)
#: Float working registers; F8 holds NaN, F9/F10 are scratch.
_FREGS = (0, 1, 2, 3, 4, 5, 6, 7)

_INT_MASK = 0xFFFFF  # keep integers within int64 products
_DATA_SIZE = 16

_INT_OPS = ("add", "sub", "mul", "and", "or", "xor", "shl", "shr",
            "div", "mod", "slt", "sle", "seq", "sne", "imin", "imax")
_FLOAT_OPS = ("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax")
_FUNARY_OPS = ("fsqrt", "fexp", "flog", "fsin", "fcos", "fabs", "fneg",
               "ffloor")
_CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")
_BRANCH_OPS = ("beq", "bne", "blt", "bge", "ble", "bgt")

#: Macro kinds eligible in each profile.
_VECTOR_KINDS = (
    "int", "intimm", "fop", "fopimm", "funary", "ftoi", "itof",
    "select", "fselect", "cmpjt", "branch", "rand", "nanmm", "probjmp",
)
_FULL_KINDS = _VECTOR_KINDS + ("randn", "mem", "fmem", "call")

PROFILES = ("full", "vector")


@dataclass(frozen=True)
class GenProgram:
    """A generated program as a shrinkable descriptor."""

    seed: int
    profile: str
    iters: int
    body: Tuple[Tuple, ...]
    use_sub: bool

    @property
    def name(self) -> str:
        return f"gen-{self.profile}-{self.seed}"


def generate(seed: int, profile: str = "full") -> GenProgram:
    """Roll one random program descriptor from ``seed``."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; known: {PROFILES}")
    rng = random.Random(seed)
    kinds = _FULL_KINDS if profile == "full" else _VECTOR_KINDS
    body = []
    use_sub = False
    for _ in range(rng.randint(6, 20)):
        kind = rng.choice(kinds)
        if kind == "int":
            body.append((kind, rng.choice(_INT_OPS), rng.choice(_IREGS),
                         rng.choice(_IREGS), rng.choice(_IREGS)))
        elif kind == "intimm":
            body.append((kind, rng.choice(_INT_OPS), rng.choice(_IREGS),
                         rng.choice(_IREGS), rng.randint(0, 255)))
        elif kind == "fop":
            body.append((kind, rng.choice(_FLOAT_OPS), rng.choice(_FREGS),
                         rng.choice(_FREGS), rng.choice(_FREGS)))
        elif kind == "fopimm":
            body.append((kind, rng.choice(_FLOAT_OPS), rng.choice(_FREGS),
                         rng.choice(_FREGS),
                         round(rng.uniform(-4.0, 4.0), 6)))
        elif kind == "funary":
            body.append((kind, rng.choice(_FUNARY_OPS), rng.choice(_FREGS),
                         rng.choice(_FREGS)))
        elif kind == "ftoi":
            body.append((kind, rng.choice(_IREGS), rng.choice(_FREGS)))
        elif kind == "itof":
            body.append((kind, rng.choice(_FREGS), rng.choice(_IREGS)))
        elif kind == "select":
            body.append((kind, rng.choice(_IREGS), rng.choice(_IREGS),
                         rng.choice(_IREGS), rng.choice(_IREGS),
                         rng.choice(_IREGS)))
        elif kind == "fselect":
            body.append((kind, rng.choice(_FREGS), rng.choice(_FREGS),
                         rng.choice(_FREGS), rng.choice(_FREGS),
                         rng.choice(_FREGS)))
        elif kind == "cmpjt":
            body.append((kind, rng.choice(_CMP_OPS), rng.choice(_IREGS),
                         rng.choice(_IREGS), rng.random() < 0.5,
                         rng.choice(_IREGS)))
        elif kind == "branch":
            body.append((kind, rng.choice(_BRANCH_OPS), rng.choice(_IREGS),
                         rng.choice(_IREGS), rng.choice(_FREGS)))
        elif kind in ("rand", "randn"):
            body.append((kind, rng.choice(_FREGS)))
        elif kind == "nanmm":
            body.append((kind, rng.choice(("fmin", "fmax")),
                         rng.choice(_FREGS), rng.choice(_FREGS),
                         rng.random() < 0.5))
        elif kind == "probjmp":
            body.append((kind, rng.choice(_CMP_OPS),
                         round(rng.uniform(0.1, 0.9), 4),
                         rng.choice(_IREGS)))
        elif kind in ("mem", "fmem"):
            body.append((kind, rng.choice(_IREGS if kind == "mem"
                                          else _FREGS),
                         rng.choice(_IREGS),
                         rng.choice(_IREGS if kind == "mem" else _FREGS)))
        elif kind == "call":
            body.append((kind,))
            use_sub = True
    return GenProgram(
        seed=seed,
        profile=profile,
        iters=rng.randint(2, 6),
        body=tuple(body),
        use_sub=use_sub,
    )


def build_program(gen: GenProgram) -> Program:
    """Deterministically assemble a descriptor into a Program."""
    data_size = _DATA_SIZE if gen.profile == "full" else 0
    b = ProgramBuilder(gen.name, data_size=data_size)
    seed_rng = random.Random(gen.seed ^ 0x5EED)

    # Prologue: loop bookkeeping, seeded working registers, runtime NaN.
    b.li(R(0), 0)
    b.li(R(7), gen.iters)
    for index in _IREGS:
        b.li(R(index), seed_rng.randint(0, _INT_MASK))
    for index in _FREGS:
        b.fli(F(index), round(seed_rng.uniform(-8.0, 8.0), 6))
    b.fli(F(9), 1e308)
    b.fadd(F(9), F(9), F(9))    # inf
    b.fsub(F(8), F(9), F(9))    # inf - inf = NaN

    labels = iter(range(1_000_000))

    def fresh() -> str:
        return f"m{next(labels)}"

    b.label("loop")
    for macro in gen.body:
        _emit(b, macro, fresh)
    b.add(R(0), R(0), 1)
    b.blt(R(0), R(7), "loop")

    # Epilogue: publish the working state on the output channels.
    for index in _IREGS:
        b.out(R(index), 0)
    for index in _FREGS:
        b.out(F(index), 1)
    b.halt()

    if gen.use_sub:
        b.label("sub0")
        b.add(R(9), R(1), R(2))
        b.and_(R(9), R(9), _INT_MASK)
        b.xor(R(3), R(3), R(9))
        b.ret()

    return b.build()


def _emit(b: ProgramBuilder, macro: Tuple, fresh) -> None:
    kind = macro[0]
    if kind == "int" or kind == "intimm":
        _, op, d, a, src = macro
        dst, lhs = R(d), R(a)
        rhs = R(src) if kind == "int" else src
        if op in ("div", "mod"):
            b.or_(R(9), rhs, 1)  # odd => nonzero divisor
            (b.div if op == "div" else b.mod)(dst, lhs, R(9))
        elif op in ("shl", "shr"):
            b.and_(R(9), rhs, 7)
            (b.shl if op == "shl" else b.shr)(dst, lhs, R(9))
        else:
            getattr(b, op + "_" if op in ("and", "or") else op)(
                dst, lhs, rhs
            )
        # Every integer result is masked to 20 bits: keeps products and
        # add/sub chains inside int64 for the vector tier (the
        # interpreter computes in Python bignums) and keeps values
        # non-negative so DIV/MOD/SHR never see sign-dependent cases.
        b.and_(dst, dst, _INT_MASK)
    elif kind == "fop" or kind == "fopimm":
        _, op, d, a, src = macro
        dst, lhs = F(d), F(a)
        rhs = F(src) if kind == "fop" else src
        if op == "fdiv":
            # |rhs| + 1.0 keeps the denominator >= 1 (or NaN, which is
            # consistent across tiers).
            if kind == "fop":
                b.fabs_(F(10), rhs)
            else:
                b.fli(F(10), abs(src))
            b.fadd(F(10), F(10), 1.0)
            b.fdiv(dst, lhs, F(10))
        else:
            getattr(b, op)(dst, lhs, rhs)
    elif kind == "funary":
        _, op, d, a = macro
        dst, src = F(d), F(a)
        if op in ("fsqrt", "flog"):
            b.fabs_(F(10), src)
            if op == "flog":
                b.fadd(F(10), F(10), 1e-9)
            (b.fsqrt if op == "fsqrt" else b.flog)(dst, F(10))
        elif op in ("fexp", "fsin", "fcos"):
            # Clamp into [-50, 50]; NaN passes through and every tier's
            # exp/sin/cos maps NaN to NaN.
            b.fmin(F(10), src, 50.0)
            b.fmax(F(10), F(10), -50.0)
            getattr(b, op)(dst, F(10))
        elif op == "ffloor":
            # floor(NaN/inf) raises in the scalar tiers: strip and clamp.
            b.feq(R(9), src, src)
            b.fselect(F(10), R(9), src, 0.0)
            b.fmin(F(10), F(10), 1e6)
            b.fmax(F(10), F(10), -1e6)
            b.ffloor(dst, F(10))
        elif op == "fabs":
            b.fabs_(dst, src)
        else:
            getattr(b, op)(dst, src)
    elif kind == "ftoi":
        _, d, a = macro
        # Strip NaN (undefined conversion), clamp inf into int range.
        b.feq(R(9), F(a), F(a))
        b.fselect(F(10), R(9), F(a), 0.0)
        b.fmin(F(10), F(10), 1e6)
        b.fmax(F(10), F(10), -1e6)
        b.ftoi(R(d), F(10))
    elif kind == "itof":
        _, d, a = macro
        b.itof(F(d), R(a))
    elif kind == "select":
        _, d, ca, cb, a, v = macro
        b.slt(R(9), R(ca), R(cb))
        b.select(R(d), R(9), R(a), R(v))
    elif kind == "fselect":
        _, d, ca, cb, a, v = macro
        b.flt(R(9), F(ca), F(cb))
        b.fselect(F(d), R(9), F(a), F(v))
    elif kind == "cmpjt":
        _, operator, a, v, negate, filler = macro
        skip = fresh()
        b.cmp(operator, R(a), R(v))
        (b.jf if negate else b.jt)(skip)
        b.xor(R(filler), R(filler), 0x3F)
        b.label(skip)
        b.nop()
    elif kind == "branch":
        _, op, a, v, ffiller = macro
        skip = fresh()
        getattr(b, op)(R(a), R(v), skip)
        b.fadd(F(ffiller), F(ffiller), 0.5)
        b.label(skip)
        b.nop()
    elif kind == "rand":
        b.rand(F(macro[1]))
    elif kind == "randn":
        b.randn(F(macro[1]))
    elif kind == "nanmm":
        _, op, d, a, nan_first = macro
        lhs, rhs = (F(8), F(a)) if nan_first else (F(a), F(8))
        getattr(b, op)(F(d), lhs, rhs)
    elif kind == "probjmp":
        _, operator, threshold, filler = macro
        skip = fresh()
        b.rand(F(10))
        b.prob_cmp(operator, F(10), threshold)
        b.prob_jmp(None, skip)
        b.add(R(filler), R(filler), 3)
        b.and_(R(filler), R(filler), _INT_MASK)
        b.label(skip)
        b.nop()
    elif kind == "mem":
        _, d, a, v = macro
        b.and_(R(8), R(a), _DATA_SIZE - 1)
        b.store(R(v), R(8))
        b.load(R(d), R(8))
    elif kind == "fmem":
        _, d, a, v = macro
        b.and_(R(8), R(a), _DATA_SIZE - 1)
        b.fstore(F(v), R(8))
        b.fload(F(d), R(8))
    elif kind == "call":
        b.call("sub0")
    else:  # pragma: no cover - descriptors come from generate()
        raise ValueError(f"unknown macro kind {kind!r}")
