"""Single-step lockstep differential testing across execution tiers.

The bit-identity contract says every tier — interpreter, compiled,
vector, trace replay — commits the same architectural state at every
retired instruction.  End-to-end result comparison can only say *that*
two tiers disagree; this package says *where*:

* :mod:`~repro.diff.steppers` — one resumable single-step adapter per
  tier, all behind the same :class:`~repro.diff.steppers.Stepper`
  surface.
* :mod:`~repro.diff.harness` — :func:`~repro.diff.harness.diff_tiers`
  drives the tiers to shared retired-count barriers and reports the
  first divergence as a structured
  :class:`~repro.diff.harness.Divergence` delta.
* :mod:`~repro.diff.generator` — random, shrinkable ISA programs that
  stay inside every tier's defined envelope by construction.
* :mod:`~repro.diff.shrink` — delta-debugging minimizer for diverging
  generated programs.

CLI entry point: ``pbs-experiments diff`` (see ``docs/diffing.md``).
"""

from .generator import GenProgram, PROFILES, build_program, generate
from .harness import Divergence, diff_tiers
from .shrink import shrink
from .steppers import (
    DIFF_MAX_INSTRUCTIONS,
    STEPPERS,
    CompiledStepper,
    InterpStepper,
    ReplayStepper,
    Stepper,
    VectorStepper,
)

__all__ = [
    "GenProgram",
    "PROFILES",
    "build_program",
    "generate",
    "Divergence",
    "diff_tiers",
    "shrink",
    "DIFF_MAX_INSTRUCTIONS",
    "STEPPERS",
    "CompiledStepper",
    "InterpStepper",
    "ReplayStepper",
    "Stepper",
    "VectorStepper",
]
