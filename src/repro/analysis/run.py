"""Drive analysis passes over stored traces — no Session, no interpreter.

:func:`analyze_trace` streams one trace file through every requested
pass in a single :class:`~repro.trace.TraceReader` pass (one decode of
each event frame, fanned out to N consumers), and returns a structured
report following the ``RunResult`` conventions: plain JSON-serializable
primitives, identity fields first, one ``analyses`` sub-dict per pass::

    from repro.analysis import analyze_trace
    from repro.trace import TraceStore

    store = TraceStore(".pbs-traces")
    report = analyze_trace(store.path(digest), ["branch-entropy"])
    print(report["analyses"]["branch-entropy"]["overall"])

:func:`analyze_store` resolves digests (or digest prefixes, or metadata
selectors like ``workload="pi", seed=1``) against a
:class:`~repro.trace.TraceStore` and analyzes every match.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..functional.trace import EventBatch
from ..trace import TraceReader, TraceStore
from ..trace.format import unpack_events_batch
from .base import AnalysisPass, analysis_names, create_analysis

#: Passes run when the caller names none: every registered zero-config
#: pass, in registration order (``mispredicts`` included — it defaults
#: to the paper's baseline predictors).
def default_passes() -> List[str]:
    return analysis_names()


def resolve_passes(
    passes: Optional[Sequence[Union[str, AnalysisPass]]] = None,
    **options,
) -> List[AnalysisPass]:
    """Turn a mixed list of names and instances into fresh pass objects.

    ``options`` maps a pass name to its constructor kwargs, e.g.
    ``mispredicts={"predictors": ("tournament",)}``.
    """
    if passes is None:
        passes = default_passes()
    resolved: List[AnalysisPass] = []
    for item in passes:
        if isinstance(item, AnalysisPass):
            resolved.append(item)
        else:
            resolved.append(create_analysis(item, **options.get(item, {})))
    return resolved


def analyze_trace(
    trace: Union[str, Path, TraceReader],
    passes: Optional[Sequence[Union[str, AnalysisPass]]] = None,
    **options,
) -> Dict:
    """Stream one stored trace through ``passes``; return the report.

    ``trace`` is a trace file path or an open
    :class:`~repro.trace.TraceReader`.  The event stream is decoded
    exactly once regardless of how many passes consume it.
    """
    reader = trace if isinstance(trace, TraceReader) else TraceReader(trace)
    sinks = resolve_passes(passes, **options)
    events = 0
    consumers = [getattr(sink, "consume_batch", None) for sink in sinks]
    if sinks and all(consume is not None for consume in consumers):
        # Every pass speaks the columnar protocol (e.g. ``mispredicts``
        # alone): decode each stored frame straight into an EventBatch
        # and fan the batch out — no TraceEvent construction.
        batch = EventBatch()
        for payload in reader._event_payloads():
            unpack_events_batch(payload, batch)
            for consume in consumers:
                consume(batch)
            events += len(batch.pcs)
            batch.clear()
    else:
        for event in reader.events():
            for sink in sinks:
                sink(event)
            events += 1
    meta = reader.meta
    return {
        "workload": meta.get("workload"),
        "scale": meta.get("scale"),
        "seed": meta.get("seed"),
        "mode": "pbs" if meta.get("pbs_config") else "base",
        "instructions": int(meta.get("instructions") or 0),
        "events": events,
        "analyses": {sink.name: sink.result() for sink in sinks},
    }


def select_digests(
    store: TraceStore,
    digests: Optional[Sequence[str]] = None,
    **selector,
) -> List[str]:
    """Resolve digest prefixes and/or metadata selectors to full digests.

    ``digests`` entries are unique-prefix matched (like ``trace info``);
    ``selector`` keys are matched against the manifest metadata, with
    list/tuple values meaning "any of" — the sweep-selector shape::

        select_digests(store, workload=["pi", "dop"], seed=1, mode="base")

    With neither, every stored trace is selected.
    """
    if digests:
        matched: List[str] = []
        for prefix in digests:
            hits = store.digests(prefix)
            if not hits:
                raise LookupError(f"no trace matches {prefix!r}")
            matched.extend(hits)
        pool = sorted(dict.fromkeys(matched))
    else:
        pool = store.digests()
    if not selector:
        return pool
    selected = []
    for digest in pool:
        entry = store.entry(digest) or {}
        for key, wanted in selector.items():
            have = entry.get(key)
            if isinstance(wanted, (list, tuple, set)):
                if have not in wanted:
                    break
            elif have != wanted:
                break
        else:
            selected.append(digest)
    return selected


def analyze_store(
    store: Union[str, Path, TraceStore],
    digests: Optional[Sequence[str]] = None,
    passes: Optional[Sequence[Union[str, AnalysisPass]]] = None,
    selector: Optional[Dict] = None,
    **options,
) -> List[Dict]:
    """Analyze every selected trace in ``store``; one report per trace.

    Each report carries its ``digest`` so results join back to
    ``trace ls``.  Passes are rebuilt per trace — no state leaks across
    reports.
    """
    if not isinstance(store, TraceStore):
        store = TraceStore(store)
    reports = []
    for digest in select_digests(store, digests, **(selector or {})):
        reader = store.open(digest)
        if reader is None:
            continue  # unreadable (counted as a store miss): skip, like replay does
        report = analyze_trace(reader, passes, **options)
        reports.append({"digest": digest, **report})
    return reports
