"""The analysis-pass contract and registry.

An :class:`AnalysisPass` is a plain trace sink — exactly the protocol
predictors, timing cores and the PBS engine already speak: it is called
once per committed-path :class:`~repro.functional.trace.TraceEvent` and,
when the stream ends, :meth:`result` returns a JSON-serializable payload
following the same structured-results conventions as
:class:`~repro.sim.results.RunResult` (plain dicts of primitives, stable
key order, derived quantities computed from the counters they summarize).

Passes register under a kebab-case name with :func:`register_analysis`,
mirroring ``@register_workload`` / ``@register_predictor``::

    from repro.analysis import AnalysisPass, register_analysis

    @register_analysis("my-study")
    class MyStudy(AnalysisPass):
        def __call__(self, event): ...
        def result(self): return {...}

``repro analyze`` (the ``pbs-experiments analyze`` subcommand) and
:func:`~repro.analysis.run.analyze_trace` resolve names through this
registry; one :class:`~repro.trace.TraceReader` pass fans the event
stream out to every requested consumer.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..sim.registry import Registry, validate_options


class AnalysisPass:
    """One streaming trace consumer: feed events, then read the result.

    Subclasses implement ``__call__(event)`` (the hot path — one call per
    retired instruction) and :meth:`result`.  A pass instance is single
    use: it accumulates state across the whole stream and is rebuilt for
    every analyzed trace.
    """

    #: Registry name (set by :func:`register_analysis`).
    name: str = "?"

    def __call__(self, event) -> None:
        raise NotImplementedError

    def result(self) -> Dict:
        """The pass's JSON-serializable findings for the consumed stream."""
        raise NotImplementedError


#: name -> AnalysisPass subclass (see :func:`register_analysis`).
ANALYSES = Registry("analysis", catalog="registered passes")


def register_analysis(name: str, *, replace: bool = False):
    """Class decorator registering an :class:`AnalysisPass` under ``name``.

    Duplicate names raise ``ValueError``; pass ``replace=True`` to
    deliberately override a built-in pass.
    """

    def decorator(cls: Type[AnalysisPass]) -> Type[AnalysisPass]:
        cls.name = name
        ANALYSES.register(name, cls, replace=replace)
        return cls

    return decorator


def analysis_names() -> List[str]:
    """Registered pass names, in registration order."""
    return list(ANALYSES)


def get_analysis(name: str) -> Type[AnalysisPass]:
    """The registered :class:`AnalysisPass` subclass for ``name``."""
    return ANALYSES.get(name)


def list_analyses() -> List[str]:
    """Uniform ``list_*`` alias for :func:`analysis_names`."""
    return analysis_names()


def create_analysis(name: str, **options) -> AnalysisPass:
    """Instantiate the registered pass ``name`` with ``options``.

    Options the pass constructor does not accept raise ``TypeError``
    naming the valid ones.
    """
    cls = ANALYSES.get(name)
    validate_options("analysis", name, cls, options)
    return cls(**options)
