"""The analysis-pass contract and registry.

An :class:`AnalysisPass` is a plain trace sink — exactly the protocol
predictors, timing cores and the PBS engine already speak: it is called
once per committed-path :class:`~repro.functional.trace.TraceEvent` and,
when the stream ends, :meth:`result` returns a JSON-serializable payload
following the same structured-results conventions as
:class:`~repro.sim.results.RunResult` (plain dicts of primitives, stable
key order, derived quantities computed from the counters they summarize).

Passes register under a kebab-case name with :func:`register_analysis`,
mirroring ``@register_workload`` / ``@register_predictor``::

    from repro.analysis import AnalysisPass, register_analysis

    @register_analysis("my-study")
    class MyStudy(AnalysisPass):
        def __call__(self, event): ...
        def result(self): return {...}

``repro analyze`` (the ``pbs-experiments analyze`` subcommand) and
:func:`~repro.analysis.run.analyze_trace` resolve names through this
registry; one :class:`~repro.trace.TraceReader` pass fans the event
stream out to every requested consumer.
"""

from __future__ import annotations

from typing import Dict, List, Type


class AnalysisPass:
    """One streaming trace consumer: feed events, then read the result.

    Subclasses implement ``__call__(event)`` (the hot path — one call per
    retired instruction) and :meth:`result`.  A pass instance is single
    use: it accumulates state across the whole stream and is rebuilt for
    every analyzed trace.
    """

    #: Registry name (set by :func:`register_analysis`).
    name: str = "?"

    def __call__(self, event) -> None:
        raise NotImplementedError

    def result(self) -> Dict:
        """The pass's JSON-serializable findings for the consumed stream."""
        raise NotImplementedError


#: name -> AnalysisPass subclass (see :func:`register_analysis`).
ANALYSES: Dict[str, Type[AnalysisPass]] = {}


def register_analysis(name: str):
    """Class decorator registering an :class:`AnalysisPass` under ``name``."""

    def decorator(cls: Type[AnalysisPass]) -> Type[AnalysisPass]:
        cls.name = name
        ANALYSES[name] = cls
        return cls

    return decorator


def analysis_names() -> List[str]:
    """Registered pass names, in registration order."""
    return list(ANALYSES)


def create_analysis(name: str, **options) -> AnalysisPass:
    """Instantiate the registered pass ``name`` with ``options``."""
    try:
        cls = ANALYSES[name]
    except KeyError:
        known = ", ".join(sorted(ANALYSES))
        raise KeyError(
            f"unknown analysis {name!r}; registered passes: {known}"
        ) from None
    return cls(**options)
