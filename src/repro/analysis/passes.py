"""The built-in analysis passes.

Five studies ship with the package, all streaming (O(sites) memory, one
look at each event) and all deterministic — per-branch tables are sorted
by a stable key so ``repro analyze --json`` output is byte-reproducible
for a given trace:

==================  ====================================================
``instruction-mix``  dynamic opcode/functional-unit mix, branch and
                     memory densities
``branch-entropy``   per-branch Shannon entropy of the direction stream
                     (the paper's motivation: probabilistic branches sit
                     near 1 bit/execution, beyond any predictor)
``taken-rate``       histogram of per-branch-site taken rates, by site
                     and by execution
``mispredicts``      per-branch mispredict breakdown under real
                     predictors — aggregate counters bit-identical to
                     the equivalent :class:`~repro.sim.Session` run
``working-set``      memory working set: unique addresses, read/write
                     split, address range
==================  ====================================================
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Optional, Sequence

from ..functional.trace import ProbMode, TraceEvent
from ..isa.opcodes import OpClass
from .base import AnalysisPass, register_analysis

#: OpClass value -> name, decoded once (the hot loops index by int).
_CLASS_NAMES = {int(op_class): op_class.name for op_class in OpClass}


def direction_entropy(taken: int, executions: int) -> float:
    """Shannon entropy (bits/execution) of a branch's direction stream,
    from its empirical taken rate.  0 executions or a degenerate rate
    (always / never taken) carry no information: 0.0 bits."""
    if executions <= 0 or taken <= 0 or taken >= executions:
        return 0.0
    p = taken / executions
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


class _BranchSites:
    """Shared per-site accounting: pc -> (executions, taken, prob)."""

    def __init__(self):
        self.executions: Counter = Counter()
        self.taken: Counter = Counter()
        self.prob: set = set()

    def observe(self, event) -> None:
        pc = event.pc
        self.executions[pc] += 1
        if event.taken:
            self.taken[pc] += 1
        if event.prob_mode != ProbMode.NOT_PROB:
            self.prob.add(pc)


@register_analysis("instruction-mix")
class InstructionMix(AnalysisPass):
    """Dynamic instruction mix by opcode class, plus branch/memory density."""

    def __init__(self):
        self.instructions = 0
        self.by_class: Counter = Counter()
        self.cond_branches = 0
        self.taken = 0
        self.prob_branches = 0
        self.pbs_hits = 0
        self.loads = 0
        self.stores = 0

    def __call__(self, event) -> None:
        self.instructions += 1
        self.by_class[event.op_class] += 1
        if event.addr is not None:
            if event.is_store:
                self.stores += 1
            else:
                self.loads += 1
        if event.is_cond_branch:
            self.cond_branches += 1
            if event.taken:
                self.taken += 1
            prob_mode = event.prob_mode
            if prob_mode != ProbMode.NOT_PROB:
                self.prob_branches += 1
                if prob_mode == ProbMode.PBS_HIT:
                    self.pbs_hits += 1

    def result(self) -> Dict:
        total = self.instructions
        return {
            "instructions": total,
            "by_class": {
                _CLASS_NAMES[op_class]: {
                    "count": count,
                    "fraction": count / total if total else 0.0,
                }
                for op_class, count in sorted(self.by_class.items())
            },
            "branches": {
                "conditional": self.cond_branches,
                "taken": self.taken,
                "taken_rate": (
                    self.taken / self.cond_branches if self.cond_branches else 0.0
                ),
                "probabilistic": self.prob_branches,
                "pbs_hits": self.pbs_hits,
                "per_kilo_instruction": (
                    1000.0 * self.cond_branches / total if total else 0.0
                ),
            },
            "memory": {
                "loads": self.loads,
                "stores": self.stores,
                "per_kilo_instruction": (
                    1000.0 * (self.loads + self.stores) / total if total else 0.0
                ),
            },
        }


@register_analysis("branch-entropy")
class BranchEntropy(AnalysisPass):
    """Per-branch direction entropy — the paper's core quantity.

    A probabilistic branch with ``p ≈ 0.5`` carries ~1 bit per execution
    that no history-based predictor can learn; regular loop branches sit
    near 0.  The pass reports per-site entropy plus execution-weighted
    aggregates split by regular versus probabilistic sites.

    ``top`` bounds the per-branch table (highest total entropy first);
    ``None`` keeps every site.
    """

    def __init__(self, top: Optional[int] = 20):
        self.top = top
        self.sites = _BranchSites()
        self.instructions = 0

    def __call__(self, event) -> None:
        self.instructions += 1
        if event.is_cond_branch:
            self.sites.observe(event)

    def _aggregate(self, pcs) -> Dict:
        executions = sum(self.sites.executions[pc] for pc in pcs)
        total_bits = sum(
            self.sites.executions[pc]
            * direction_entropy(self.sites.taken[pc], self.sites.executions[pc])
            for pc in pcs
        )
        return {
            "sites": len(pcs),
            "executions": executions,
            "total_entropy_bits": total_bits,
            "bits_per_execution": total_bits / executions if executions else 0.0,
        }

    def result(self) -> Dict:
        executions = self.sites.executions
        per_branch = [
            {
                "pc": pc,
                "executions": count,
                "taken_rate": self.sites.taken[pc] / count,
                "entropy_bits": direction_entropy(self.sites.taken[pc], count),
                "total_entropy_bits": count
                * direction_entropy(self.sites.taken[pc], count),
                "probabilistic": pc in self.sites.prob,
            }
            for pc, count in executions.items()
        ]
        per_branch.sort(key=lambda row: (-row["total_entropy_bits"], row["pc"]))
        prob_pcs = [pc for pc in executions if pc in self.sites.prob]
        regular_pcs = [pc for pc in executions if pc not in self.sites.prob]
        return {
            "instructions": self.instructions,
            "overall": self._aggregate(list(executions)),
            "regular": self._aggregate(regular_pcs),
            "probabilistic": self._aggregate(prob_pcs),
            "per_branch": (
                per_branch[: self.top] if self.top is not None else per_branch
            ),
        }


@register_analysis("taken-rate")
class TakenRateHistogram(AnalysisPass):
    """Histogram of per-branch-site taken rates.

    Two views of the same sites: ``by_site`` counts each static branch
    once; ``by_execution`` weights each site by how often it ran, which
    is what the predictor actually experiences.
    """

    def __init__(self, bins: int = 10):
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.bins = bins
        self.sites = _BranchSites()

    def __call__(self, event) -> None:
        if event.is_cond_branch:
            self.sites.observe(event)

    def result(self) -> Dict:
        by_site = [0] * self.bins
        by_execution = [0] * self.bins
        for pc, count in self.sites.executions.items():
            rate = self.sites.taken[pc] / count
            index = min(int(rate * self.bins), self.bins - 1)
            by_site[index] += 1
            by_execution[index] += count
        return {
            "bins": self.bins,
            "edges": [index / self.bins for index in range(self.bins + 1)],
            "by_site": by_site,
            "by_execution": by_execution,
            "sites": len(self.sites.executions),
            "executions": sum(self.sites.executions.values()),
        }


@register_analysis("mispredicts")
class MispredictBreakdown(AnalysisPass):
    """Per-branch mispredict breakdown under real predictors.

    Runs one fresh :class:`~repro.branch.PredictorHarness` per named
    predictor over the stream — the exact component a
    :class:`~repro.sim.Session` attaches — so the aggregate counters are
    **bit-identical** to the equivalent live run.  On top of the
    harness, the pass attributes every mispredict to its branch site.

    ``predictors`` defaults to the paper's baselines; ``top`` bounds the
    per-branch tables (most mispredicts first), ``None`` keeps all.
    """

    def __init__(
        self,
        predictors: Optional[Sequence[str]] = None,
        top: Optional[int] = 20,
    ):
        from ..branch import PredictorHarness
        from ..sim.registry import baseline_predictors, create_predictor

        names = tuple(predictors) if predictors else baseline_predictors()
        self.top = top
        self.harnesses = {
            name: PredictorHarness(create_predictor(name)) for name in names
        }
        self.per_pc: Dict[str, Counter] = {name: Counter() for name in names}
        self.executions: Counter = Counter()

    def __call__(self, event) -> None:
        if event.is_cond_branch:
            self.executions[event.pc] += 1
            for name, harness in self.harnesses.items():
                before = harness.stats.mispredicts
                harness(event)
                if harness.stats.mispredicts != before:
                    self.per_pc[name][event.pc] += 1
        else:
            for harness in self.harnesses.values():
                harness(event)

    def consume_batch(self, batch) -> None:
        """Columnar fast path, bit-identical to the per-event walk.

        Non-branch rows only bump every harness's instruction counter,
        so they are accounted in bulk; branch rows (sparse — found with
        a C-level column scan) keep the exact per-event attribution
        semantics, including each harness's own predict/update order.
        """
        conds = batch.conds
        n = len(conds)
        find = conds.index
        branch_rows = []
        i = 0
        while True:
            try:
                i = find(True, i)
            except ValueError:
                break
            branch_rows.append(i)
            i += 1
        bulk = n - len(branch_rows)
        harness_items = list(self.harnesses.items())
        for _, harness in harness_items:
            harness.stats.instructions += bulk
        if not branch_rows:
            return
        pcs = batch.pcs
        executions = self.executions
        per_pc = self.per_pc
        make = TraceEvent
        for i in branch_rows:
            pc = pcs[i]
            event = make(
                pc,
                batch.ops[i],
                batch.classes[i],
                batch.dests[i],
                batch.srcs[i],
                is_cond_branch=True,
                taken=batch.takens[i],
                target=batch.targets[i],
                next_pc=batch.next_pcs[i],
                addr=batch.addrs[i],
                is_store=batch.stores[i],
                prob_mode=batch.prob_modes[i],
            )
            executions[pc] += 1
            for name, harness in harness_items:
                before = harness.stats.mispredicts
                harness(event)
                if harness.stats.mispredicts != before:
                    per_pc[name][pc] += 1

    def result(self) -> Dict:
        payload = {}
        for name, harness in self.harnesses.items():
            per_branch = [
                {
                    "pc": pc,
                    "executions": self.executions[pc],
                    "mispredicts": mispredicts,
                    "mispredict_rate": mispredicts / self.executions[pc],
                }
                for pc, mispredicts in self.per_pc[name].items()
            ]
            per_branch.sort(key=lambda row: (-row["mispredicts"], row["pc"]))
            payload[name] = {
                # The harness's own accounting, verbatim: matches the
                # PredictorMetrics a Session run reports for this
                # predictor, field for field.
                **harness.stats.as_dict(),
                "per_branch": (
                    per_branch[: self.top] if self.top is not None else per_branch
                ),
            }
        return payload


@register_analysis("working-set")
class WorkingSet(AnalysisPass):
    """Memory working set: unique addresses, read/write split, range."""

    def __init__(self):
        self.loads = 0
        self.stores = 0
        self.read: set = set()
        self.written: set = set()

    def __call__(self, event) -> None:
        addr = event.addr
        if addr is None:
            return
        if event.is_store:
            self.stores += 1
            self.written.add(addr)
        else:
            self.loads += 1
            self.read.add(addr)

    def result(self) -> Dict:
        touched = self.read | self.written
        return {
            "accesses": self.loads + self.stores,
            "loads": self.loads,
            "stores": self.stores,
            "unique_addresses": len(touched),
            "unique_read": len(self.read),
            "unique_written": len(self.written),
            "read_only": len(self.read - self.written),
            "address_range": (
                [min(touched), max(touched)] if touched else None
            ),
        }
