"""repro.analysis — trace-native analysis passes.

Post-hoc microarchitectural studies over stored committed-path traces:
one :class:`~repro.trace.TraceReader` pass fans the event stream out to
any number of registered consumers, with no :class:`~repro.sim.Session`
and no re-interpretation.  See ``docs/analysis.md``::

    from repro.analysis import analyze_store

    for report in analyze_store(".pbs-traces", passes=["branch-entropy"]):
        print(report["workload"], report["analyses"]["branch-entropy"]["overall"])

Five passes ship in :mod:`repro.analysis.passes` (``instruction-mix``,
``branch-entropy``, ``taken-rate``, ``mispredicts``, ``working-set``);
new studies plug in with :func:`register_analysis`.  On the command
line: ``pbs-experiments analyze``.
"""

from .base import (
    ANALYSES,
    AnalysisPass,
    analysis_names,
    create_analysis,
    register_analysis,
)
from .passes import (
    BranchEntropy,
    InstructionMix,
    MispredictBreakdown,
    TakenRateHistogram,
    WorkingSet,
    direction_entropy,
)
from .run import (
    analyze_store,
    analyze_trace,
    default_passes,
    resolve_passes,
    select_digests,
)

__all__ = [
    "ANALYSES",
    "AnalysisPass",
    "analysis_names",
    "create_analysis",
    "register_analysis",
    "BranchEntropy",
    "InstructionMix",
    "MispredictBreakdown",
    "TakenRateHistogram",
    "WorkingSet",
    "direction_entropy",
    "analyze_store",
    "analyze_trace",
    "default_passes",
    "resolve_passes",
    "select_digests",
]
