"""The fluent :class:`Session` builder — one simulation run, one API.

A session describes a single execution of a benchmark: which workload, at
what scale and seed, which branch predictors observe the trace, whether
the PBS engine is attached, and whether the run is timed on an
out-of-order core.  The benchmark is interpreted **once** and the trace
fans out to every attached consumer::

    from repro.sim import Session

    result = (
        Session("pi")
        .scale(0.5)
        .seed(1)
        .predictors("tournament", "tage-sc-l")
        .pbs()
        .run()
    )
    print(result.predictor("tournament").mpki)

``run()`` returns a structured, JSON-serializable :class:`RunResult`; the
live simulation objects (harnesses, cores, the PBS engine, the raw
``WorkloadRun``) stay reachable on the session for callers that need
them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from .registry import create_predictor, get_workload
from .results import CoreMetrics, PBSMetrics, PredictorMetrics, RunResult

#: Default evaluation scale: large enough for stable branch-predictor
#: steady state, small enough for pure-Python simulation.
DEFAULT_SCALE = 0.5
DEFAULT_SEED = 1


class FanOut:
    """Fans one trace event stream out to several consumers.

    When at least one member speaks the columnar protocol
    (:class:`~repro.functional.EventBatch` via ``consume_batch``), the
    fan-out declares ``consume_batch`` itself so batch-producing
    engines hand it whole batches: columnar members receive the batch
    directly, and legacy per-event callables get the rows exploded to
    :class:`~repro.functional.TraceEvent` objects — once per batch,
    shared across all of them.  ``batches`` counts batches received;
    ``fallbacks`` counts the ones that needed an explosion.  An
    all-legacy fan-out exposes no ``consume_batch``, keeping producers
    on the exact per-event path.
    """

    def __init__(self, sinks: Sequence[Callable]):
        self.sinks = list(sinks)
        self._columnar = [
            consume
            for consume in (
                getattr(sink, "consume_batch", None) for sink in self.sinks
            )
            if consume is not None
        ]
        self._legacy = [
            sink for sink in self.sinks
            if getattr(sink, "consume_batch", None) is None
        ]
        self.batches = 0
        self.fallbacks = 0
        if self._columnar:
            # Conditional instance attribute: producers probe with
            # getattr, so an all-legacy fan-out must not look columnar.
            self.consume_batch = self._consume_batch

    def __call__(self, event) -> None:
        for sink in self.sinks:
            sink(event)

    def _consume_batch(self, batch) -> None:
        self.batches += 1
        for consume in self._columnar:
            consume(batch)
        legacy = self._legacy
        if legacy:
            self.fallbacks += 1
            if len(legacy) == 1:
                only = legacy[0]
                for event in batch.events():
                    only(event)
            else:
                for event in batch.events():
                    for sink in legacy:
                        sink(event)

    def legacy_names(self) -> List[str]:
        """Display names of the members that force per-event explosion."""
        return [
            getattr(sink, "__qualname__", None) or type(sink).__name__
            for sink in self._legacy
        ]


@dataclass
class _PredictorSpec:
    """One attached trace consumer: a predictor plus harness options."""

    factory: Union[str, Callable[[], object]]
    label: str
    options: Dict = field(default_factory=dict)

    def make(self):
        if callable(self.factory):
            return self.factory()
        return create_predictor(self.factory)


class Session:
    """Fluent builder for one simulation run.

    Every configuration method returns ``self`` so calls chain; ``run()``
    may be called repeatedly (fresh predictors, cores and engine are
    built each time).
    """

    def __init__(
        self,
        workload: str,
        scale: float = DEFAULT_SCALE,
        seed: int = DEFAULT_SEED,
    ):
        self._workload = workload
        self._scale = scale
        self._seed = seed
        self._specs: List[_PredictorSpec] = []
        self._pbs_config = None          # PBSConfig when PBS is on
        self._timing_config = None       # CoreConfig when timing is on
        self._record_consumed = False
        self._extra_sinks: List[Callable] = []
        self._trace_store = None
        self._trace_mode = "auto"
        self._engine_name = None         # execution tier (None = default)
        self._engine_options: Dict = {}
        # Live objects from the most recent run().
        self.harnesses: Dict[str, object] = {}
        self.cores: Dict[str, object] = {}
        self.pbs_engine = None
        self.workload_run = None

    # -- builder methods -----------------------------------------------
    def scale(self, scale: float) -> "Session":
        self._scale = scale
        return self

    def seed(self, seed: int) -> "Session":
        self._seed = seed
        return self

    def engine(self, name: Optional[str] = None, **options) -> "Session":
        """Select the execution tier (see :mod:`repro.engines`).

        ``name`` is a registered engine (``"interp"``, ``"compiled"``,
        ``"vector"``); ``options`` go to its constructor (e.g.
        ``cache_dir=`` for the compiled tier's persistent codegen
        cache).  If the chosen tier does not support this session's
        workload/attachments, ``run()`` silently falls back to
        ``"interp"`` — tiers change speed, never results.  ``None``
        restores the default (the process-wide directive set by the CLI
        ``--engine`` flag, or the direct interpreter path).
        """
        if name is not None:
            from ..engines import get_engine

            get_engine(name)  # fail fast on unknown names
        self._engine_name = name
        self._engine_options = dict(options)
        return self

    def predictor(
        self,
        factory: Union[str, Callable[[], object]],
        label: Optional[str] = None,
        **options,
    ) -> "Session":
        """Attach one predictor; ``options`` go to its harness
        (``filter_probabilistic``, ``pbs_inserts_history``)."""
        if label is None:
            label = factory if isinstance(factory, str) else (
                getattr(factory, "__name__", repr(factory))
            )
        self._specs.append(_PredictorSpec(factory, label, dict(options)))
        return self

    def predictors(self, *factories, **options) -> "Session":
        """Attach several predictors, all with the same harness options."""
        for factory in factories:
            self.predictor(factory, **options)
        return self

    def pbs(self, config=True) -> "Session":
        """Attach the PBS engine (``True`` = the paper's default config,
        a :class:`~repro.core.PBSConfig` for custom sizing, falsy = off)."""
        from ..core import PBSConfig

        if config is True:
            self._pbs_config = PBSConfig()
        elif not config:
            self._pbs_config = None
        else:
            self._pbs_config = config
        return self

    def timing(self, config=None) -> "Session":
        """Run each attached predictor inside an out-of-order timing core
        (``config``: a :class:`~repro.pipeline.CoreConfig`, a zero-arg
        factory such as ``four_wide``, or ``None`` for the paper's 4-wide
        baseline)."""
        from ..pipeline import four_wide

        if config is None:
            config = four_wide()
        elif callable(config):
            config = config()
        self._timing_config = config
        return self

    def record_consumed(self, flag: bool = True) -> "Session":
        """Record the probabilistic values the program consumes, in
        consumption order (Table III's randomness streams)."""
        self._record_consumed = flag
        return self

    def sink(self, consumer: Callable) -> "Session":
        """Attach an arbitrary extra trace consumer.

        Unlike predictors and cores, extra sinks are caller-owned: they
        are not rebuilt per run, so a sink fed by several ``run()``
        calls accumulates state across all of them.
        """
        self._extra_sinks.append(consumer)
        return self

    def trace(self, store, mode: str = "auto") -> "Session":
        """Attach a :class:`~repro.trace.TraceStore` (or its directory).

        With a store attached, ``run()`` **replays** the committed-path
        event stream from disk when the store holds a trace for this
        session's ``(workload, scale, seed, PBS config)`` key, and
        **interprets + captures** otherwise — either way returning a
        :class:`RunResult` bit-identical to a plain interpretation.
        ``mode`` forces one leg: ``"capture"`` always re-interprets and
        records; ``"replay"`` raises ``LookupError`` on a missing trace.
        """
        if mode not in ("auto", "capture", "replay"):
            raise ValueError(f"trace mode must be auto/capture/replay, got {mode!r}")
        if store is None:
            self._trace_store = None
            return self
        from ..trace import TraceStore

        if not isinstance(store, TraceStore):
            store = TraceStore(store)
        self._trace_store = store
        self._trace_mode = mode
        return self

    def trace_digest(self) -> str:
        """The digest identifying this session's committed-path trace."""
        from dataclasses import asdict

        from ..trace import trace_digest

        pbs_config = (
            asdict(self._pbs_config) if self._pbs_config is not None else None
        )
        return trace_digest(self._workload, self._scale, self._seed, pbs_config)

    # -- execution -------------------------------------------------------
    def _build_consumers(self) -> List[Callable]:
        """Fresh harnesses/cores for one run, plus caller-owned sinks."""
        from ..branch import PredictorHarness
        from ..pipeline import OoOCore

        self.harnesses = {}
        self.cores = {}
        consumers: List[Callable] = []
        if self._timing_config is not None:
            for spec in self._specs:
                config = replace(
                    self._timing_config,
                    latencies=dict(self._timing_config.latencies),
                )
                core = OoOCore(config, spec.make(), **spec.options)
                self.cores[spec.label] = core
                consumers.append(core.feed)
        else:
            for spec in self._specs:
                harness = PredictorHarness(spec.make(), **spec.options)
                self.harnesses[spec.label] = harness
                consumers.append(harness)
        consumers.extend(self._extra_sinks)
        return consumers

    def run(self) -> RunResult:
        from ..core import PBSEngine

        store = self._trace_store
        if store is not None:
            digest = self.trace_digest()
            if self._trace_mode in ("auto", "replay"):
                reader = store.open(digest)
                if reader is not None:
                    if self._trace_mode == "replay":
                        return self._replay(reader)
                    from ..trace import TraceFormatError

                    try:
                        return self._replay(reader)
                    except (OSError, TraceFormatError):
                        # The trace vanished or broke between open() and
                        # the event stream — e.g. a concurrent
                        # `trace gc --max-bytes` evicted it.  auto mode
                        # falls back to a fresh interpretation (and
                        # recapture) instead of failing the run.
                        pass
                elif self._trace_mode == "replay":
                    raise LookupError(
                        f"no trace for {self._workload} scale={self._scale} "
                        f"seed={self._seed} in {store.root}"
                    )

        workload = get_workload(self._workload)
        consumers = self._build_consumers()
        self.pbs_engine = (
            PBSEngine(self._pbs_config) if self._pbs_config is not None else None
        )
        capture = None
        record_consumed = self._record_consumed
        if store is not None:
            capture = store.writer(digest)
            consumers = consumers + [capture.sink]
            # Consumed values ride along in the trace metadata so a
            # later record_consumed replay stays bit-identical; the
            # executor's semantics do not depend on the flag.
            record_consumed = True
        sink = None
        sink_tap = None
        if consumers:
            if (
                len(consumers) == 1
                and getattr(consumers[0], "consume_batch", None) is None
            ):
                # A lone legacy callable keeps the direct per-event
                # path — no wrapper, no per-event indirection.
                sink = consumers[0]
            else:
                sink = sink_tap = FanOut(consumers)

        tier = self._resolve_engine(
            workload,
            sink=sink is not None,
            record_consumed=record_consumed,
        )

        started = time.perf_counter()
        try:
            self.workload_run = workload.run(
                scale=self._scale,
                seed=self._seed,
                pbs=self.pbs_engine,
                sink=sink,
                record_consumed=record_consumed,
                engine=tier,
            )
            wall_time = time.perf_counter() - started

            for core in self.cores.values():
                core.finalize()

            run = self.workload_run
            pbs_stats = (
                self.pbs_engine.stats.as_dict() if self.pbs_engine else None
            )
            if capture is not None:
                capture.commit({
                    "workload": self._workload,
                    "scale": self._scale,
                    "seed": self._seed,
                    "pbs_config": self._resolved_pbs_config(),
                    "instructions": run.instructions,
                    "outputs": dict(run.outputs),
                    "pbs_stats": pbs_stats,
                    "consumed_values": list(run.consumed_values),
                })
        except BaseException:
            # Never leave a staged capture behind — not on interpreter
            # faults, and not on a consumer's finalize() or the commit
            # itself failing after a successful run.
            if capture is not None:
                capture.abort()
            raise
        result = self._package(
            wall_time,
            outputs=dict(run.outputs),
            instructions=run.instructions,
            pbs_metrics=(
                PBSMetrics.from_stats(self.pbs_engine.stats)
                if self.pbs_engine else None
            ),
            consumed_values=(
                list(run.consumed_values) if self._record_consumed else None
            ),
        )
        if capture is not None:
            result.trace_origin = "capture"
        if tier is not None:
            result.engine_used = tier.name
            result.compiled_hit = tier.last_cache_hit
        if sink_tap is not None:
            result.sink_batches = sink_tap.batches
            result.sink_fallbacks = sink_tap.fallbacks
            if sink_tap.fallbacks:
                result.sink_fallback_consumers = sink_tap.legacy_names()
        return result

    def _resolve_engine(self, workload, *, sink: bool, record_consumed: bool):
        """The Engine instance for this run, or ``None`` for the direct
        interpreter path.  Unsupported tier requests fall back to
        ``"interp"`` — engine choice may change speed, never results."""
        from ..engines import create_engine, default_engine

        if self._engine_name is not None:
            directive = (self._engine_name, self._engine_options)
        else:
            directive = default_engine()
        if directive is None:
            return None
        name, options = directive
        tier = create_engine(name, **options)
        if not tier.supports(
            workload,
            pbs=self._pbs_config is not None,
            sink=sink,
            record_consumed=record_consumed,
        ):
            tier = create_engine("interp")
        return tier

    def _replay(self, reader) -> RunResult:
        """Rebuild a :class:`RunResult` from a stored trace, feeding the
        recorded event stream to freshly built consumers."""
        consumers = self._build_consumers()
        self.pbs_engine = None
        self.workload_run = None

        started = time.perf_counter()
        sink_tap = None
        if (
            len(consumers) == 1
            and getattr(consumers[0], "consume_batch", None) is None
        ):
            reader.replay(consumers[0])
        elif consumers:
            sink_tap = FanOut(consumers)
            reader.replay(sink_tap)
        # No consumers: everything the result needs is in the metadata,
        # so the event stream is not even decompressed.
        wall_time = time.perf_counter() - started

        for core in self.cores.values():
            core.finalize()

        meta = reader.meta
        pbs_stats = meta.get("pbs_stats")
        result = self._package(
            wall_time,
            outputs=dict(meta.get("outputs") or {}),
            instructions=int(meta.get("instructions") or 0),
            pbs_metrics=PBSMetrics(**pbs_stats) if pbs_stats else None,
            consumed_values=(
                list(meta.get("consumed_values") or [])
                if self._record_consumed else None
            ),
        )
        result.trace_origin = "replay"
        if sink_tap is not None:
            result.sink_batches = sink_tap.batches
            result.sink_fallbacks = sink_tap.fallbacks
            if sink_tap.fallbacks:
                result.sink_fallback_consumers = sink_tap.legacy_names()
        return result

    def _resolved_pbs_config(self) -> Optional[Dict]:
        from dataclasses import asdict

        return asdict(self._pbs_config) if self._pbs_config is not None else None

    def _package(
        self,
        wall_time: float,
        outputs: Dict,
        instructions: int,
        pbs_metrics: Optional[PBSMetrics],
        consumed_values: Optional[List[float]],
    ) -> RunResult:
        result = RunResult(
            workload=self._workload,
            scale=self._scale,
            seed=self._seed,
            pbs=self._pbs_config is not None,
            pbs_config=self._resolved_pbs_config(),
            predictors={
                label: PredictorMetrics.from_stats(label, harness.stats)
                for label, harness in self.harnesses.items()
            },
            cores={
                label: CoreMetrics.from_stats(label, core.stats)
                for label, core in self.cores.items()
            },
            pbs_stats=pbs_metrics,
            outputs=outputs,
            instructions=instructions,
            wall_time=wall_time,
        )
        if consumed_values is not None:
            result.consumed_values = consumed_values
        return result
