"""On-disk memoization of completed simulation runs.

Results are stored one JSON file per run, named by the SHA-256 digest of
the run's canonical specification (workload, scale, seed, mode, predictor
set, PBS/core configuration and a cache-format version).  Re-running a
sweep therefore only simulates the grid points whose results are missing;
everything else loads from disk with ``cached=True`` set on the result.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from .results import RunResult

#: Bump when RunResult serialization or simulation semantics change in a
#: way that invalidates previously cached results.
CACHE_VERSION = 1


def spec_digest(payload: Dict) -> str:
    """Stable digest of a canonical (JSON-serializable) run spec."""
    payload = dict(payload)
    payload["__cache_version__"] = CACHE_VERSION
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of ``<digest>.json`` files, one per completed run."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def get(self, digest: str) -> Optional[RunResult]:
        path = self.path(digest)
        try:
            result = RunResult.from_json(path.read_text())
        except (OSError, ValueError, KeyError, TypeError):
            # Missing or corrupt entry: treat as a miss and re-simulate.
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, digest: str, result: RunResult) -> None:
        path = self.path(digest)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(result.to_json())
        os.replace(tmp, path)

    def clear(self) -> int:
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
