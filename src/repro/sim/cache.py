"""On-disk memoization of completed simulation runs.

Results are stored one JSON file per run, named by the SHA-256 digest of
the run's canonical specification (workload, scale, seed, mode, predictor
set, PBS/core configuration and a cache-format version) and **sharded**
into 256 subdirectories by digest prefix::

    <root>/
        manifest.jsonl          # one line per entry: digest + metadata
        3f/3f9a...e1.json
        a0/a07c...42.json

Sharding keeps directory listings fast at millions of entries, and the
append-only ``manifest.jsonl`` index gives O(1) ``len()``, ``stats()``
and digest-prefix lookup without touching the shard directories.  Entry
writes go through a per-process temp file and an atomic ``os.replace``,
and manifest appends are single ``O_APPEND`` writes, so concurrent
writers — even racing on the same digest — never corrupt the cache.

Caches written by the flat v1 layout (``<root>/<digest>.json``) are
migrated in place, transparently, the first time they are opened.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Union

from .results import RunResult

#: Bump when RunResult serialization or simulation semantics change in a
#: way that invalidates previously cached results.  (The v1 -> sharded
#: *layout* change did not alter digests, so migrated entries keep
#: hitting.)
CACHE_VERSION = 1

#: Hex characters of the digest used as the shard directory name.
SHARD_CHARS = 2

MANIFEST_NAME = "manifest.jsonl"

_DIGEST_LEN = 64  # hex SHA-256


def spec_digest(payload: Dict) -> str:
    """Stable digest of a canonical (JSON-serializable) run spec."""
    payload = dict(payload)
    payload["__cache_version__"] = CACHE_VERSION
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _looks_like_digest(stem: str) -> bool:
    if len(stem) != _DIGEST_LEN:
        return False
    return all(ch in "0123456789abcdef" for ch in stem)


class ResultCache:
    """A sharded directory of ``<digest[:2]>/<digest>.json`` files."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._index: Optional[Dict[str, Dict]] = None
        self._migrate_v1()
        if not self.manifest_path.exists():
            # Rebuild the index from the shards now, before any put()
            # writes an entry the rebuild scan could mistake for a
            # pre-existing metadata-less one.  When a manifest exists
            # the index loads lazily — the fully-cached replay path
            # (get() only) never pays for reading it.
            self._load_index()

    # -- layout ---------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def path(self, digest: str) -> Path:
        return self.root / digest[:SHARD_CHARS] / f"{digest}.json"

    def _migrate_v1(self) -> int:
        """Move flat ``<root>/<digest>.json`` entries into shards."""
        moved = 0
        for path in self.root.glob("*.json"):
            if not _looks_like_digest(path.stem):
                continue
            target = self.path(path.stem)
            target.parent.mkdir(exist_ok=True)
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue  # a concurrent opener migrated this entry first
            self._record(path.stem, self._entry_meta(path.stem))
            moved += 1
        return moved

    def _entry_meta(self, digest: str) -> Dict:
        """Manifest entry for ``digest``, with run metadata recovered
        from the stored JSON (pre-manifest entries: migration, rebuild)."""
        entry = {"digest": digest}
        try:
            data = json.loads(self.path(digest).read_text())
        except (OSError, ValueError):
            return entry
        if isinstance(data, dict) and "workload" in data:
            entry.update({
                "workload": data["workload"],
                "scale": data.get("scale"),
                "seed": data.get("seed"),
                "mode": "pbs" if data.get("pbs") else "base",
            })
        return entry

    # -- manifest index ---------------------------------------------------

    def _load_index(self) -> Dict[str, Dict]:
        """digest -> manifest entry, loaded lazily from ``manifest.jsonl``.

        Later lines win (concurrent writers may append duplicates); a
        truncated trailing line from a crashed writer is skipped.  When
        the manifest is missing but shards exist — deleted by hand, or
        an older sharded cache — it is rebuilt from the shard listing.
        """
        if self._index is not None:
            return self._index
        index: Dict[str, Dict] = {}
        if self.manifest_path.exists():
            for line in self.manifest_path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                digest = entry.get("digest")
                if digest:
                    index[digest] = entry
        else:
            for path in sorted(self.root.glob("??/*.json")):
                if _looks_like_digest(path.stem):
                    index[path.stem] = self._entry_meta(path.stem)
            if index:
                with open(self.manifest_path, "a") as handle:
                    for entry in index.values():
                        handle.write(
                            json.dumps(entry, sort_keys=True) + "\n"
                        )
        self._index = index
        return index

    def _record(self, digest: str, entry: Dict) -> None:
        if self._index is None:
            # Index not loaded: append without paying the O(entries)
            # manifest parse just to dedup one line — duplicate lines
            # are tolerated on read (later lines win).
            self._append(entry)
            return
        existing = self._index.get(digest)
        if existing is not None and (
            "workload" in existing or "workload" not in entry
        ):
            return  # already indexed with at least as much metadata
        self._index[digest] = entry
        self._append(entry)

    def _append(self, entry: Dict) -> None:
        # A single small O_APPEND write: atomic on POSIX, so concurrent
        # writers interleave whole lines rather than corrupting them.
        with open(self.manifest_path, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    # -- entries ----------------------------------------------------------

    def get(self, digest: str) -> Optional[RunResult]:
        path = self.path(digest)
        try:
            result = RunResult.from_json(path.read_text())
        except (OSError, ValueError, KeyError, TypeError):
            # Missing or corrupt entry: treat as a miss and re-simulate.
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, digest: str, result: RunResult) -> None:
        path = self.path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Per-writer temp name: two writers racing on one digest each
        # stage their own file, and the atomic replaces leave whichever
        # finished last — both wrote identical content anyway.
        tmp = path.with_name(
            f".{digest}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_text(result.to_json())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)  # only present if the write failed
        self._record(digest, {
            "digest": digest,
            "workload": result.workload,
            "scale": result.scale,
            "seed": result.seed,
            "mode": "pbs" if result.pbs else "base",
        })

    def digests(self, prefix: str = "") -> List[str]:
        """All indexed digests starting with ``prefix``, sorted."""
        return sorted(d for d in self._load_index() if d.startswith(prefix))

    def stats(self) -> Dict:
        """Index-backed summary: entry/shard counts, session hit rates."""
        index = self._load_index()
        by_workload = Counter(
            entry["workload"] for entry in index.values()
            if entry.get("workload")
        )
        shards = {digest[:SHARD_CHARS] for digest in index}
        return {
            "entries": len(index),
            "shards": len(shards),
            "hits": self.hits,
            "misses": self.misses,
            "by_workload": dict(sorted(by_workload.items())),
        }

    def clear(self) -> int:
        removed = 0
        for shard in self.root.glob("??"):
            if not shard.is_dir():
                continue
            for path in shard.iterdir():
                if path.is_file():
                    if path.suffix == ".json":
                        removed += 1
                    path.unlink()  # entries and stray .tmp files alike
            if not any(shard.iterdir()):
                shard.rmdir()
        self.manifest_path.unlink(missing_ok=True)
        self._index = {}
        return removed

    def __len__(self) -> int:
        return len(self._load_index())

    def __contains__(self, digest: str) -> bool:
        return digest in self._load_index()
