"""On-disk memoization of completed simulation runs.

Results are stored one JSON file per run, named by the SHA-256 digest of
the run's canonical specification (workload, scale, seed, mode, predictor
set, PBS/core configuration and a cache-format version) and **sharded**
into 256 subdirectories by digest prefix::

    <root>/
        manifest.jsonl          # one line per entry: digest + metadata
        3f/3f9a...e1.json
        a0/a07c...42.json

The sharding, manifest index and atomic-write machinery is the shared
:class:`~repro.storage.ShardedStore` layout (also used by the trace
store); this module layers the :class:`RunResult` JSON codec and run
metadata on top.

Caches written by the flat v1 layout (``<root>/<digest>.json``) are
migrated in place, transparently, the first time they are opened.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from ..storage import ShardedStore, canonical_digest, looks_like_digest
from .results import RunResult

#: Bump when RunResult serialization or simulation semantics change in a
#: way that invalidates previously cached results.  (The v1 -> sharded
#: *layout* change did not alter digests, so migrated entries keep
#: hitting.)
CACHE_VERSION = 1


def spec_digest(payload: Dict) -> str:
    """Stable digest of a canonical (JSON-serializable) run spec."""
    payload = dict(payload)
    payload["__cache_version__"] = CACHE_VERSION
    return canonical_digest(payload)


class ResultCache(ShardedStore):
    """A sharded directory of ``<digest[:2]>/<digest>.json`` files."""

    suffix = ".json"

    def _post_open(self) -> None:
        self._migrate_v1()

    def _migrate_v1(self) -> int:
        """Move flat ``<root>/<digest>.json`` entries into shards."""
        moved = 0
        for path in self.root.glob("*.json"):
            if not looks_like_digest(path.stem):
                continue
            target = self.path(path.stem)
            target.parent.mkdir(exist_ok=True)
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue  # a concurrent opener migrated this entry first
            self._record(path.stem, self._entry_meta(path.stem))
            moved += 1
        return moved

    def _entry_meta(self, digest: str) -> Dict:
        """Manifest entry for ``digest``, with run metadata recovered
        from the stored JSON (pre-manifest entries: migration, rebuild)."""
        entry = {"digest": digest}
        try:
            data = json.loads(self.path(digest).read_text())
        except (OSError, ValueError):
            return entry
        if isinstance(data, dict) and "workload" in data:
            entry.update({
                "workload": data["workload"],
                "scale": data.get("scale"),
                "seed": data.get("seed"),
                "mode": "pbs" if data.get("pbs") else "base",
            })
        return entry

    # -- entries ----------------------------------------------------------

    def get(self, digest: str) -> Optional[RunResult]:
        path = self.path(digest)
        try:
            result = RunResult.from_json(path.read_text())
        except (OSError, ValueError, KeyError, TypeError):
            # Missing or corrupt entry: treat as a miss and re-simulate.
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, digest: str, result: RunResult) -> None:
        self.write_entry(digest, result.to_json(), meta={
            "workload": result.workload,
            "scale": result.scale,
            "seed": result.seed,
            "mode": "pbs" if result.pbs else "base",
        })

    def stats(self) -> Dict:
        """Index-backed summary: entry/shard counts, session hit rates."""
        from collections import Counter

        summary = super().stats()
        by_workload = Counter(
            entry["workload"] for entry in self._load_index().values()
            if entry.get("workload")
        )
        summary["by_workload"] = dict(sorted(by_workload.items()))
        return summary
