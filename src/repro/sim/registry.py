"""Decorator-based plugin registries for workloads and predictors.

Scenarios register themselves at import time instead of being hardwired
into central tuples::

    @register_workload(order=6)
    class PiWorkload(Workload):
        name = "pi"
        ...

    @register_predictor("tage-sc-l", baseline=True)
    class TageSCL(BranchPredictor):
        ...

This module is intentionally dependency-free (no imports from the rest of
:mod:`repro`) so any package — workloads, predictors, external plugins —
can import it without cycles.  The registries preserve a stable listing
order: entries registered with an explicit ``order`` come first (sorted by
it), later unordered registrations append in import order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

_bootstrapped = False


def _bootstrap() -> None:
    """Import the built-in workload and predictor packages once, so their
    ``@register_*`` decorators run before the first registry lookup."""
    global _bootstrapped
    if _bootstrapped:
        return
    _bootstrapped = True
    from .. import branch, workloads  # noqa: F401  (import side effect)


# ----------------------------------------------------------------------
# Workloads.
# ----------------------------------------------------------------------
#: name -> (workload class, sort key)
_WORKLOADS: Dict[str, Tuple[type, Tuple[int, int]]] = {}
_WORKLOAD_INSTANCES: Dict[str, object] = {}
_registration_seq = 0


def register_workload(cls: Optional[type] = None, *, order: Optional[int] = None):
    """Class decorator: add a :class:`~repro.workloads.base.Workload` to
    the global registry under its ``name`` attribute.

    ``order`` pins the position in :func:`workload_names` (the paper's
    Table II order); omitted, the workload lists after all ordered ones.
    Usable bare (``@register_workload``) or parameterized
    (``@register_workload(order=3)``).  Re-registering a name replaces the
    previous entry (latest wins), so plugins may override built-ins.
    """

    def decorate(workload_cls: type) -> type:
        global _registration_seq
        name = getattr(workload_cls, "name", "")
        if not name:
            raise ValueError(
                f"workload class {workload_cls.__name__} needs a non-empty "
                "'name' attribute to be registered"
            )
        _registration_seq += 1
        sort_key = (0, order) if order is not None else (1, _registration_seq)
        _WORKLOADS[name] = (workload_cls, sort_key)
        _WORKLOAD_INSTANCES.pop(name, None)
        return workload_cls

    if cls is not None:
        return decorate(cls)
    return decorate


def workload_names() -> List[str]:
    """All registered benchmark names, paper (Table II) order first."""
    _bootstrap()
    return [
        name
        for name, (_, key) in sorted(_WORKLOADS.items(), key=lambda kv: kv[1][1])
    ]


def workload_class(name: str) -> type:
    _bootstrap()
    try:
        return _WORKLOADS[name][0]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(workload_names())}"
        ) from None


def get_workload(name: str):
    """The shared instance of workload ``name`` (instantiated lazily)."""
    if name not in _WORKLOAD_INSTANCES:
        _WORKLOAD_INSTANCES[name] = workload_class(name)()
    return _WORKLOAD_INSTANCES[name]


def all_workloads() -> List[object]:
    return [get_workload(name) for name in workload_names()]


# ----------------------------------------------------------------------
# Predictors.
# ----------------------------------------------------------------------
#: name -> (factory, is_baseline, sort key)
_PREDICTORS: Dict[str, Tuple[Callable[[], object], bool, Tuple[int, int]]] = {}


def register_predictor(name: str, *, baseline: bool = False, order: Optional[int] = None):
    """Decorator: register a zero-argument predictor factory under ``name``.

    ``baseline=True`` marks the paper's evaluated predictors (Section
    VI-B); experiments that do not name predictors explicitly run the
    baselines.  Applies to classes and plain factory callables alike.
    """

    def decorate(factory: Callable[[], object]) -> Callable[[], object]:
        global _registration_seq
        _registration_seq += 1
        sort_key = (0, order) if order is not None else (1, _registration_seq)
        _PREDICTORS[name] = (factory, baseline, sort_key)
        return factory

    return decorate


def predictor_names(baseline_only: bool = False) -> List[str]:
    _bootstrap()
    items = sorted(_PREDICTORS.items(), key=lambda kv: kv[1][2])
    return [
        name for name, (_, is_base, _) in items if is_base or not baseline_only
    ]


def baseline_predictors() -> Tuple[str, ...]:
    """The paper's evaluated predictor pair, in registration order."""
    return tuple(predictor_names(baseline_only=True))


def predictor_factory(name: str) -> Callable[[], object]:
    _bootstrap()
    try:
        return _PREDICTORS[name][0]
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: "
            f"{', '.join(predictor_names())}"
        ) from None


def create_predictor(name: str):
    """Instantiate a fresh predictor by registry name."""
    return predictor_factory(name)()
