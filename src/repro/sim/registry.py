"""Decorator-based plugin registries for workloads and predictors.

Scenarios register themselves at import time instead of being hardwired
into central tuples::

    @register_workload(order=6)
    class PiWorkload(Workload):
        name = "pi"
        ...

    @register_predictor("tage-sc-l", baseline=True)
    class TageSCL(BranchPredictor):
        ...

All five of the package's registries — workloads, predictors, executors
(:mod:`repro.sim.executors`), analysis passes (:mod:`repro.analysis`)
and execution engines (:mod:`repro.engines`) — are instances of one
:class:`Registry` helper defined here, so they share the same
ergonomics: ``register_*`` raises on duplicate names (pass
``replace=True`` to override deliberately), ``get_*``/``list_*`` raise
and list with identical shapes, and every unknown-name error names the
registered alternatives.

This module is intentionally dependency-free (no imports from the rest of
:mod:`repro`) so any package — workloads, predictors, external plugins —
can import it without cycles.  The registries preserve a stable listing
order: entries registered with an explicit ``order`` come first (sorted by
it), later unordered registrations append in import order.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Tuple

#: Sentinel distinguishing "no default given" from an explicit ``None``.
_MISSING = object()

_bootstrapped = False


def _bootstrap() -> None:
    """Import the built-in workload and predictor packages once, so their
    ``@register_*`` decorators run before the first registry lookup."""
    global _bootstrapped
    if _bootstrapped:
        return
    _bootstrapped = True
    from .. import branch, workloads  # noqa: F401  (import side effect)


class Registry:
    """One name → entry registry, shared by all five plugin families.

    The mapping protocol mirrors a plain dict of ``name -> object``
    (``in``, ``len``, ``[...]``, iteration in listing order), so code
    written against the historical ``EXECUTORS``/``ANALYSES`` dicts
    keeps working unchanged.

    ``catalog`` is the phrase used to introduce the known names in
    unknown-name errors (``"available"``, ``"registered backends"``,
    ...), preserving each family's historical error text.
    """

    def __init__(
        self,
        kind: str,
        *,
        catalog: str = "available",
        bootstrap: Optional[Callable[[], None]] = None,
    ):
        self.kind = kind
        self.catalog = catalog
        self._bootstrap = bootstrap
        #: name -> (registered object, listing sort key).  Exposed to the
        #: domain modules (e.g. as ``_WORKLOADS``) for surgical cleanup
        #: in tests; everyday code goes through the methods.
        self.entries: Dict[str, Tuple[object, Tuple[int, int]]] = {}
        self._seq = 0

    def _boot(self) -> None:
        if self._bootstrap is not None:
            self._bootstrap()

    def register(
        self,
        name: str,
        obj,
        *,
        order: Optional[int] = None,
        replace: bool = False,
    ):
        """Add ``obj`` under ``name``.  Duplicate names raise unless
        ``replace=True`` — a silent latest-wins override is how two
        plugins end up fighting over one name without anyone noticing."""
        if not name or not isinstance(name, str):
            raise ValueError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )
        if not replace and name in self.entries:
            if self._same_definition(self.entries[name][0], obj):
                # The module was executed twice under different names —
                # ``python -m repro.sim.remote`` runs it both as itself
                # (via the package import) and as ``__main__``.  The
                # re-execution is idempotent: keep the first entry.
                return self.entries[name][0]
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                "pass replace=True to override it"
            )
        self._seq += 1
        sort_key = (0, order) if order is not None else (1, self._seq)
        self.entries[name] = (obj, sort_key)
        return obj

    @staticmethod
    def _same_definition(existing, candidate) -> bool:
        """Same qualified name defined in the same source file — the
        signature of one definition imported twice, not two plugins
        fighting over a name."""
        try:
            return (
                existing is not candidate
                and getattr(existing, "__qualname__", None)
                == getattr(candidate, "__qualname__", object())
                and inspect.getfile(existing) == inspect.getfile(candidate)
            )
        except TypeError:  # builtins / objects without source files
            return False

    def get(self, name: str):
        """The object registered under ``name`` (KeyError lists the rest)."""
        self._boot()
        try:
            return self.entries[name][0]
        except KeyError:
            known = ", ".join(self.names())
            raise KeyError(
                f"unknown {self.kind} {name!r}; {self.catalog}: {known}"
            ) from None

    def names(self) -> List[str]:
        """Registered names: explicit ``order`` first, then import order."""
        self._boot()
        return [
            name
            for name, (_, key) in sorted(
                self.entries.items(), key=lambda kv: kv[1][1]
            )
        ]

    # -- mapping protocol (drop-in for the historical plain dicts) ------
    def __getitem__(self, name: str):
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        self._boot()
        return name in self.entries

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        self._boot()
        return len(self.entries)

    def __delitem__(self, name: str) -> None:
        del self.entries[name]

    def pop(self, name: str, default=_MISSING):
        """Remove ``name``, returning the registered object (dict-style)."""
        entry = self.entries.pop(name, _MISSING)
        if entry is _MISSING:
            if default is _MISSING:
                raise KeyError(name)
            return default
        return entry[0]


def validate_options(kind: str, name: str, cls, options: Dict,
                     *, reserved: Tuple[str, ...] = ()) -> None:
    """Reject constructor ``options`` the backend does not accept.

    ``create_executor``/``create_engine`` forward ``**options`` to the
    registered class; without this check a typo (``worker=`` for
    ``workers=``) surfaces as a bare ``TypeError`` from ``__init__``
    naming no alternatives — or worse, lands in a ``**kwargs`` sink and
    is silently ignored.  ``reserved`` names arguments the factory fills
    in itself (e.g. ``processes``).
    """
    if cls.__init__ is object.__init__:
        # No constructor at all: object.__init__'s ``*args, **kwargs``
        # signature would read as "takes anything" when it takes nothing.
        parameters = {}
    else:
        try:
            parameters = inspect.signature(cls.__init__).parameters
        except (TypeError, ValueError):  # builtins without signatures
            return
        if any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        ):
            return  # the backend explicitly takes anything
    valid = sorted(
        parameter_name
        for parameter_name, parameter in parameters.items()
        if parameter_name != "self"
        and parameter_name not in reserved
        and parameter.kind is not inspect.Parameter.VAR_POSITIONAL
    )
    unknown = sorted(set(options) - set(valid))
    if unknown:
        accepted = ", ".join(valid) if valid else "none"
        raise TypeError(
            f"unknown option(s) {', '.join(unknown)} for {kind} {name!r}; "
            f"valid options: {accepted}"
        )


# ----------------------------------------------------------------------
# Workloads.
# ----------------------------------------------------------------------
WORKLOADS = Registry("workload", bootstrap=_bootstrap)
#: Backing dict (name -> (class, sort key)) — kept under the historical
#: name so tests can surgically drop probe registrations.
_WORKLOADS = WORKLOADS.entries
_WORKLOAD_INSTANCES: Dict[str, object] = {}


def register_workload(
    cls: Optional[type] = None,
    *,
    order: Optional[int] = None,
    replace: bool = False,
):
    """Class decorator: add a :class:`~repro.workloads.base.Workload` to
    the global registry under its ``name`` attribute.

    ``order`` pins the position in :func:`workload_names` (the paper's
    Table II order); omitted, the workload lists after all ordered ones.
    Usable bare (``@register_workload``) or parameterized
    (``@register_workload(order=3)``).  Re-registering a name raises;
    a plugin that deliberately overrides a built-in passes
    ``replace=True``.
    """

    def decorate(workload_cls: type) -> type:
        name = getattr(workload_cls, "name", "")
        if not name:
            raise ValueError(
                f"workload class {workload_cls.__name__} needs a non-empty "
                "'name' attribute to be registered"
            )
        WORKLOADS.register(name, workload_cls, order=order, replace=replace)
        _WORKLOAD_INSTANCES.pop(name, None)
        return workload_cls

    if cls is not None:
        return decorate(cls)
    return decorate


def workload_names() -> List[str]:
    """All registered benchmark names, paper (Table II) order first."""
    return WORKLOADS.names()


def paper_workload_names() -> List[str]:
    """Only the paper's Table II benchmarks, in table order.

    Registered workloads with ``paper = None`` (ported kernels that join
    the differential/golden corpus but appear in no paper table) are
    excluded; the paper-figure experiments default to this list so their
    result shapes stay pinned to the paper's eight rows.
    """
    return [
        name
        for name in WORKLOADS.names()
        if getattr(get_workload(name), "paper", None) is not None
    ]


def workload_class(name: str) -> type:
    return WORKLOADS.get(name)


def get_workload(name: str):
    """The shared instance of workload ``name`` (instantiated lazily)."""
    if name not in _WORKLOAD_INSTANCES:
        _WORKLOAD_INSTANCES[name] = workload_class(name)()
    return _WORKLOAD_INSTANCES[name]


def list_workloads() -> List[str]:
    """Uniform ``list_*`` alias for :func:`workload_names`."""
    return workload_names()


def all_workloads() -> List[object]:
    return [get_workload(name) for name in workload_names()]


# ----------------------------------------------------------------------
# Predictors.
# ----------------------------------------------------------------------
PREDICTORS = Registry("predictor", bootstrap=_bootstrap)
#: Backing dict (name -> ((factory, is_baseline), sort key)).
_PREDICTORS = PREDICTORS.entries


def register_predictor(
    name: str,
    *,
    baseline: bool = False,
    order: Optional[int] = None,
    replace: bool = False,
):
    """Decorator: register a zero-argument predictor factory under ``name``.

    ``baseline=True`` marks the paper's evaluated predictors (Section
    VI-B); experiments that do not name predictors explicitly run the
    baselines.  Applies to classes and plain factory callables alike.
    Duplicate names raise unless ``replace=True``.
    """

    def decorate(factory: Callable[[], object]) -> Callable[[], object]:
        PREDICTORS.register(
            name, (factory, baseline), order=order, replace=replace
        )
        return factory

    return decorate


def predictor_names(baseline_only: bool = False) -> List[str]:
    return [
        name
        for name in PREDICTORS.names()
        if not baseline_only or PREDICTORS.get(name)[1]
    ]


def list_predictors() -> List[str]:
    """Uniform ``list_*`` alias for :func:`predictor_names`."""
    return predictor_names()


def baseline_predictors() -> Tuple[str, ...]:
    """The paper's evaluated predictor pair, in registration order."""
    return tuple(predictor_names(baseline_only=True))


def predictor_factory(name: str) -> Callable[[], object]:
    return PREDICTORS.get(name)[0]


def get_predictor(name: str) -> Callable[[], object]:
    """Uniform ``get_*`` alias for :func:`predictor_factory`."""
    return predictor_factory(name)


def create_predictor(name: str):
    """Instantiate a fresh predictor by registry name."""
    return predictor_factory(name)()
