"""repro.sim — the unified public API for running simulations.

One import gives everything a scenario needs:

* :class:`Session` — a fluent builder for a single run (one benchmark
  interpretation fanned out to any number of predictors, timing cores
  and the PBS engine), returning a structured :class:`RunResult`;
* :class:`Sweep` — parameter-grid execution over pluggable
  :class:`Executor` backends (serial, per-call process pool, a
  persistent :class:`WorkerPoolExecutor`, or the distributed
  :class:`RemoteExecutor` speaking to ``repro-worker`` daemons) with
  deterministic per-run seeding and an on-disk sharded
  :class:`ResultCache`;
* :func:`register_workload` / :func:`register_predictor` — decorator
  registries through which benchmarks and predictors plug themselves in.

Quickstart::

    from repro.sim import Session, Sweep

    one = Session("pi").scale(0.5).seed(1).predictors("tournament").pbs().run()
    grid = Sweep(workloads=["pi", "dop"], seeds=range(4)).run(processes=4)

See ``docs/api.md`` for the full tour.
"""

from .cache import CACHE_VERSION, ResultCache, spec_digest
from .executors import (
    EXECUTORS,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    WorkerPoolExecutor,
    create_executor,
    executor_names,
    register_executor,
)
from .remote import (
    PROTOCOL_VERSION,
    CoordinatorWorker,
    ProtocolError,
    RemoteExecutor,
    WorkerServer,
    decode_frame,
    encode_frame,
)
from .registry import (
    all_workloads,
    baseline_predictors,
    create_predictor,
    get_workload,
    predictor_factory,
    predictor_names,
    register_predictor,
    paper_workload_names,
    register_workload,
    workload_class,
    workload_names,
)
from .results import CoreMetrics, PBSMetrics, PredictorMetrics, RunResult
from .session import DEFAULT_SCALE, DEFAULT_SEED, FanOut, Session
from .sweep import MODES, RunSpec, Sweep, SweepResult
from .adaptive import (  # noqa: E402  (imports .sweep, so bound after it)
    OBJECTIVES,
    AdaptiveSweep,
    CellReport,
    FrontierSegment,
    Objective,
    RefinementReport,
    RoundReport,
    create_objective,
    get_objective,
    objective_names,
    register_objective,
)

# Execution tiers (interp / compiled / vector) re-exported lazily:
# repro.engines itself imports this package for the shared Registry
# helper, so an eager import here would be circular whenever
# ``repro.engines`` is imported first.  PEP 562 resolves the names on
# first access, by which point both packages are fully initialized —
# and importing repro.engines registers the built-in tiers, mirroring
# the executor registry above.
_ENGINE_EXPORTS = (
    "ENGINES",
    "Engine",
    "create_engine",
    "default_engine",
    "engine_names",
    "get_engine",
    "register_engine",
    "set_default_engine",
)


def __getattr__(name):
    if name in _ENGINE_EXPORTS:
        from .. import engines

        return getattr(engines, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

# Imported last: repro.serve.client needs .executors and .results, both
# already bound above, and registers the "http" executor as a side effect.
from ..serve.client import (  # noqa: E402
    COORDINATOR_ENV,
    TOKEN_ENV,
    CoordinatorClient,
    CoordinatorError,
    HttpExecutor,
)

__all__ = [
    "CACHE_VERSION",
    "ResultCache",
    "spec_digest",
    "EXECUTORS",
    "Executor",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "WorkerPoolExecutor",
    "create_executor",
    "executor_names",
    "register_executor",
    "PROTOCOL_VERSION",
    "CoordinatorWorker",
    "ProtocolError",
    "RemoteExecutor",
    "WorkerServer",
    "decode_frame",
    "encode_frame",
    "COORDINATOR_ENV",
    "TOKEN_ENV",
    "CoordinatorClient",
    "CoordinatorError",
    "HttpExecutor",
    "all_workloads",
    "baseline_predictors",
    "create_predictor",
    "get_workload",
    "predictor_factory",
    "predictor_names",
    "register_predictor",
    "register_workload",
    "workload_class",
    "paper_workload_names",
    "workload_names",
    "CoreMetrics",
    "PBSMetrics",
    "PredictorMetrics",
    "RunResult",
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "FanOut",
    "Session",
    "MODES",
    "RunSpec",
    "Sweep",
    "SweepResult",
    "OBJECTIVES",
    "AdaptiveSweep",
    "CellReport",
    "FrontierSegment",
    "Objective",
    "RefinementReport",
    "RoundReport",
    "create_objective",
    "get_objective",
    "objective_names",
    "register_objective",
    "ENGINES",
    "Engine",
    "create_engine",
    "default_engine",
    "engine_names",
    "get_engine",
    "register_engine",
    "set_default_engine",
]
