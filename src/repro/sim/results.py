"""Structured, serializable results of a simulation run.

A :class:`RunResult` is what :meth:`repro.sim.Session.run` returns: plain
dataclasses of primitives, picklable across worker processes and JSON
round-trippable for the on-disk sweep cache.  The derived quantities
(MPKI, IPC, hit rates) are properties computed exactly the way the live
``BranchStats`` / ``CoreStats`` / ``PBSStats`` objects compute them, so a
result deserialized from cache renders identically to a fresh one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional


@dataclass
class PredictorMetrics:
    """Branch-predictor accounting for one trace consumer (mirrors
    :class:`repro.branch.BranchStats`)."""

    name: str = ""
    instructions: int = 0
    regular_branches: int = 0
    regular_mispredicts: int = 0
    prob_branches: int = 0
    prob_mispredicts: int = 0
    pbs_hits: int = 0

    @property
    def branches(self) -> int:
        return self.regular_branches + self.prob_branches + self.pbs_hits

    @property
    def mispredicts(self) -> int:
        return self.regular_mispredicts + self.prob_mispredicts

    @property
    def mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredicts / self.instructions

    @property
    def regular_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.regular_mispredicts / self.instructions

    @property
    def prob_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.prob_mispredicts / self.instructions

    @classmethod
    def from_stats(cls, name: str, stats) -> "PredictorMetrics":
        return cls(
            name=name,
            instructions=stats.instructions,
            regular_branches=stats.regular_branches,
            regular_mispredicts=stats.regular_mispredicts,
            prob_branches=stats.prob_branches,
            prob_mispredicts=stats.prob_mispredicts,
            pbs_hits=stats.pbs_hits,
        )


@dataclass
class CoreMetrics:
    """Timing-model outcome for one core (mirrors
    :class:`repro.pipeline.CoreStats`)."""

    name: str = ""
    core: str = ""
    instructions: int = 0
    cycles: int = 0
    branch_stall_cycles: int = 0
    branches: PredictorMetrics = field(default_factory=PredictorMetrics)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.branches.mispredicts / self.instructions

    @classmethod
    def from_stats(cls, name: str, stats) -> "CoreMetrics":
        return cls(
            name=name,
            core=stats.core_name,
            instructions=stats.instructions,
            cycles=stats.cycles,
            branch_stall_cycles=stats.branch_stall_cycles,
            branches=PredictorMetrics.from_stats(name, stats.branches),
        )


@dataclass
class PBSMetrics:
    """PBS engine counters (mirrors :class:`repro.core.PBSStats`)."""

    instances: int = 0
    hits: int = 0
    bootstraps: int = 0
    fallbacks: int = 0
    const_mismatches: int = 0
    capacity_rejects: int = 0
    swap_rejects: int = 0
    value_count_rejects: int = 0
    deep_call_rejects: int = 0
    loop_flushes: int = 0
    allocations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.instances if self.instances else 0.0

    @classmethod
    def from_stats(cls, stats) -> "PBSMetrics":
        return cls(**stats.as_dict())


@dataclass
class RunResult:
    """Everything one :class:`~repro.sim.Session` run produced."""

    workload: str
    scale: float
    seed: int
    pbs: bool = False
    pbs_config: Optional[Dict] = None
    predictors: Dict[str, PredictorMetrics] = field(default_factory=dict)
    cores: Dict[str, CoreMetrics] = field(default_factory=dict)
    pbs_stats: Optional[PBSMetrics] = None
    outputs: Dict[str, float] = field(default_factory=dict)
    instructions: int = 0
    wall_time: float = 0.0
    consumed_values: Optional[List[float]] = None
    #: True when this result came out of a sweep cache, not a simulation.
    cached: bool = False
    #: ``"capture"`` when the run interpreted and recorded a trace,
    #: ``"replay"`` when it was reconstructed from one, ``None`` for a
    #: plain interpretation.  Transient bookkeeping like ``cached``:
    #: survives pickling to the parent process, never serialized.
    trace_origin: Optional[str] = None
    #: Name of the execution tier that produced this result
    #: (:mod:`repro.engines`), ``None`` on the legacy direct path.
    #: Transient like ``cached``/``trace_origin`` — results stay
    #: byte-identical across tiers, so the tier is never serialized.
    engine_used: Optional[str] = None
    #: True when the compiled tier reused already-generated code.
    compiled_hit: bool = False
    #: Columnar-sink accounting: ``sink_batches`` counts EventBatches
    #: the run's sink fan-out received; ``sink_fallbacks`` counts the
    #: batches it had to explode to per-event delivery for legacy
    #: consumers (``sink_fallback_consumers`` names them).  Transient
    #: like ``engine_used`` — the batch pipeline never changes results,
    #: so none of this is serialized.
    sink_batches: int = 0
    sink_fallbacks: int = 0
    sink_fallback_consumers: Optional[List[str]] = None

    # -- convenience accessors -----------------------------------------
    def predictor(self, name: str) -> PredictorMetrics:
        return self.predictors[name]

    def core(self, name: str) -> CoreMetrics:
        return self.cores[name]

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict:
        data = asdict(self)
        data.pop("cached")
        data.pop("trace_origin")
        data.pop("engine_used")
        data.pop("compiled_hit")
        data.pop("sink_batches")
        data.pop("sink_fallbacks")
        data.pop("sink_fallback_consumers")
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        data = dict(data)
        data.pop("cached", None)
        data.pop("trace_origin", None)
        data.pop("engine_used", None)
        data.pop("compiled_hit", None)
        data.pop("sink_batches", None)
        data.pop("sink_fallbacks", None)
        data.pop("sink_fallback_consumers", None)
        data["predictors"] = {
            name: PredictorMetrics(**metrics)
            for name, metrics in (data.get("predictors") or {}).items()
        }
        cores = {}
        for name, metrics in (data.get("cores") or {}).items():
            metrics = dict(metrics)
            metrics["branches"] = PredictorMetrics(**metrics["branches"])
            cores[name] = CoreMetrics(**metrics)
        data["cores"] = cores
        if data.get("pbs_stats") is not None:
            data["pbs_stats"] = PBSMetrics(**data["pbs_stats"])
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        # No key sorting: dict insertion order (e.g. predictor attachment
        # order) round-trips through the cache unchanged.
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))
