"""Distributed sweep execution: wire protocol, worker daemon, client.

This module crosses the machine boundary for :class:`~repro.sim.sweep.Sweep`
grids.  Three pieces ship together:

* **Wire protocol** — newline-delimited JSON frames (one message object
  per line, ``\\n``-terminated) over a plain TCP socket.  Every frame is
  a dict with a ``"type"`` key; :func:`encode_frame` / :func:`decode_frame`
  are the only codec.  A connection opens with a handshake that
  negotiates the protocol version *and* the cache/digest version, so a
  client and worker that would compute different spec digests refuse to
  talk instead of silently polluting each other's caches.

* **Worker daemon** — :class:`WorkerServer`, exposed on the command line
  as ``repro-worker --listen host:port --processes N --cache-dir ...``.
  It accepts any number of client connections, pulls ``run`` frames,
  simulates each spec with the existing Session machinery (inline for
  ``--processes 1``, through a shared multiprocessing pool otherwise),
  answers warm requests straight from its sharded
  :class:`~repro.sim.cache.ResultCache`, and streams ``result`` frames
  back as they complete.

* **Client** — :class:`RemoteExecutor`, registered as ``"remote"``.  It
  fans a batch of specs out over one or more worker addresses with
  work-stealing dispatch (one shared queue; each connection pipelines a
  small window and takes the next spec the moment one completes),
  reconnects on transport errors, and falls failed specs back to the
  remaining workers.  Because every spec carries its own seed, results
  are bit-identical to the ``serial`` backend.

Message frames
--------------

====================  =====================================================
``hello``             handshake; carries ``protocol``, ``cache_version``
                      and (from the worker) ``processes`` plus
                      ``trace_store`` (whether the worker holds a local
                      trace store clients may ask it to use)
``run``               ``{"id": n, "spec": RunSpec.to_dict(), "digest":
                      sha256}``; an optional ``"trace": {"mode": ...}``
                      asks the worker to serve the spec through its
                      **own** trace store (replay the committed path if
                      captured, interpret + capture otherwise);
                      ``"stream": true`` in the directive additionally
                      offers to wire-stream the trace should the worker
                      lack it
``result``            ``{"id": n, "result": RunResult.to_dict(),
                      "cached": bool}`` plus ``"trace"``:
                      ``"capture"``/``"replay"``/absent, and
                      ``"engine"``/``"engine_hit"``: which execution
                      tier ran the spec (absent for the legacy path)
``trace_want``        worker -> client: ``{"id": n, "digest": d}`` — the
                      worker parks the spec and asks for the offered
                      trace before running it
``trace_data``        client -> worker: ``{"digest": d, "data": base64}``
                      — one chunk of the trace file's raw bytes (the
                      already-compressed frames ship verbatim), each
                      frame under the 64 MiB cap
``trace_end``         client -> worker: ``{"digest": d, "sha256": hex,
                      "bytes": n}`` — closes the stream; the worker
                      verifies the checksum *and* that the received
                      file's metadata re-derives the claimed store
                      digest before committing it to its store
``trace_unavailable`` client -> worker: ``{"digest": d}`` — the offer
                      could not be honoured (file evicted since);
                      parked specs run without the trace
``error``             ``{"message": str}`` plus ``"id"`` when tied to
                      one spec
``ping``              liveness probe; answered with ``pong``
``bye``               clean client shutdown
====================  =====================================================

Trace reuse never ships the client's store *path* over the wire: the
client strips its local ``trace_store`` from the spec and sends only the
directive; each worker reads and writes its own store next to its own
cache.  What **can** cross the wire — when the client holds the trace
and the worker does not — is the trace file itself, streamed once in
``trace_data`` chunks and digest-verified on receipt, after which every
later spec of the same committed path replays from the worker's local
disk.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import socketserver
import sys
import threading
import time
from collections import deque
from queue import Empty, Queue
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .cache import CACHE_VERSION, ResultCache
from .executors import Executor, _execute_spec, _pool_context, register_executor
from .results import RunResult
from .sweep import RunSpec

#: Bump on incompatible frame/handshake changes.
#: v2: trace streaming (``trace_want``/``trace_data``/``trace_end``/
#: ``trace_unavailable``) for cold workers.
PROTOCOL_VERSION = 2

#: Hard ceiling on one frame; anything larger is treated as corrupt.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Raw bytes per ``trace_data`` chunk; base64 expansion (4/3) keeps the
#: resulting frame far under :data:`MAX_FRAME_BYTES`.
TRACE_CHUNK_BYTES = 4 * 1024 * 1024

DEFAULT_PORT = 7340

#: Environment variable consulted when no worker addresses are given
#: (``Sweep.run(executor="remote")`` with zero plumbing).
WORKERS_ENV = "REPRO_WORKERS"


class ProtocolError(Exception):
    """A malformed, truncated or protocol-violating frame."""


# ----------------------------------------------------------------------
# Framing.
# ----------------------------------------------------------------------

def encode_frame(message: Dict) -> bytes:
    """One message -> one ``\\n``-terminated JSON line.

    ``ensure_ascii`` keeps every byte printable, so a frame can never
    contain an embedded newline and the framing stays unambiguous.
    """
    raw = json.dumps(message, separators=(",", ":")).encode("ascii") + b"\n"
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(raw)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return raw


def decode_frame(raw: bytes) -> Dict:
    """The inverse of :func:`encode_frame`, rejecting anything dubious."""
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(raw)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    if not raw.endswith(b"\n"):
        raise ProtocolError("truncated frame: missing newline terminator")
    try:
        message = json.loads(raw)
    except ValueError as exc:
        raise ProtocolError(f"corrupt frame: {exc}") from None
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError("frame is not a message object with a 'type'")
    return message


def _read_frame(rfile) -> Optional[Dict]:
    """Next frame from a buffered reader; ``None`` on clean EOF."""
    line = rfile.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    return decode_frame(line)


def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``"host:port"`` (or a ready tuple) -> ``(host, port)``.

    Whitespace around either part is forgiven — ``"a:7340, b:7340"``
    split on commas must not produce a host named ``" b"``.
    """
    if isinstance(address, tuple):
        return address[0].strip(), int(address[1])
    host, _, port = address.strip().rpartition(":")
    if not host:
        host, port = address, str(DEFAULT_PORT)
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"bad worker address {address!r}; want host:port") from None


# ----------------------------------------------------------------------
# Worker daemon.
# ----------------------------------------------------------------------

class _SimulationHost:
    """State shared by both worker flavours — the listening
    :class:`WorkerServer` and the dial-out :class:`CoordinatorWorker`:
    a sharded result cache, a lazily-spawned multiprocessing pool, and
    a byte-budgeted local trace store."""

    def _init_host(self, processes, cache_dir, trace_dir,
                   trace_max_bytes, verbose) -> None:
        self.processes = processes
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.trace_dir = str(trace_dir) if trace_dir else None
        self.trace_max_bytes = trace_max_bytes
        self.verbose = verbose
        self._trace_store = None
        self._pool = None
        self._lock = threading.Lock()

    @property
    def pool(self):
        with self._lock:
            if self._pool is None:
                self._pool = _pool_context().Pool(self.processes)
            return self._pool

    @property
    def trace_store(self):
        """The worker's local :class:`~repro.trace.TraceStore` (lazy)."""
        with self._lock:
            if self._trace_store is None:
                from ..trace import TraceStore

                self._trace_store = TraceStore(self.trace_dir)
            return self._trace_store

    def _note_trace_write(self) -> None:
        """A trace landed in the store; enforce the byte budget if set."""
        if self.trace_max_bytes is None or self.trace_dir is None:
            return
        store = self.trace_store
        # Cheap size probe first: the full gc (metadata decode of every
        # trace + manifest compaction) only runs when over budget.
        if store.total_bytes() <= self.trace_max_bytes:
            return
        with self._lock:
            summary = store.gc(max_bytes=self.trace_max_bytes)
        if summary["evicted"]:
            self._log(
                f"trace store over {self.trace_max_bytes} bytes: evicted "
                f"{summary['evicted']} traces "
                f"({summary['reclaimed_bytes']} bytes reclaimed)"
            )

    def _close_pool(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def _log(self, message: str) -> None:  # pragma: no cover — overridden
        if self.verbose:
            print(f"[repro-worker] {message}", file=sys.stderr, flush=True)


class _WorkerTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    owner: "WorkerServer"


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: handshake, then a run/result stream."""

    # The protocol writes one small framed message at a time and always
    # flushes; with Nagle on, a result frame written while the previous
    # one is still unacknowledged sits behind the peer's delayed-ACK
    # timer (~40ms on Linux) — a latency cliff, even on loopback.
    disable_nagle_algorithm = True

    def handle(self):
        worker: WorkerServer = self.server.owner
        write_lock = threading.Lock()
        worker._track(self.connection, add=True)
        #: trace digest -> [(run_id, spec, digest), ...] awaiting a stream.
        self._parked: Dict[str, list] = {}
        #: trace digest -> in-flight stream receive state.
        self._incoming: Dict[str, Dict] = {}
        try:
            self._send(write_lock, {
                "type": "hello",
                "protocol": worker.protocol_version,
                "cache_version": worker.cache_version,
                "processes": worker.processes,
                "trace_store": worker.trace_dir is not None,
                "server": "repro-worker",
            })
            reply = _read_frame(self.rfile)
            if reply is None:
                return
            if (
                reply.get("type") != "hello"
                or reply.get("protocol") != worker.protocol_version
                or reply.get("cache_version") != worker.cache_version
            ):
                self._send(write_lock, {
                    "type": "error",
                    "message": (
                        "handshake rejected: worker speaks protocol "
                        f"{worker.protocol_version} / cache v{worker.cache_version}, "
                        f"client sent {reply!r}"
                    ),
                })
                return
            while True:
                try:
                    message = _read_frame(self.rfile)
                except ProtocolError as exc:
                    # Corrupt stream: tell the client why, then drop the
                    # connection — it will retry the spec elsewhere.
                    self._send(write_lock, {"type": "error", "message": str(exc)})
                    return
                if message is None or message["type"] == "bye":
                    return
                if message["type"] == "ping":
                    self._send(write_lock, {"type": "pong"})
                    continue
                if message["type"] in (
                    "trace_data", "trace_end", "trace_unavailable"
                ):
                    try:
                        self._handle_trace_frame(write_lock, message)
                    except ProtocolError as exc:
                        # Same contract as a corrupt read: say why,
                        # then drop the connection.
                        self._send(write_lock, {
                            "type": "error", "message": str(exc),
                        })
                        return
                    continue
                if message["type"] != "run":
                    self._send(write_lock, {
                        "type": "error",
                        "message": f"unexpected frame type {message['type']!r}",
                    })
                    return
                if worker._draining:
                    # Refuse, but keep the connection alive: pool
                    # callbacks for specs already running still need it.
                    self._send(write_lock, {
                        "type": "error", "id": message.get("id"),
                        "message": "worker is draining; resubmit elsewhere",
                    })
                    continue
                if not worker._note_request():
                    return  # fail_after test hook fired: simulate a crash
                self._handle_run(write_lock, message)
        except (OSError, ValueError):
            pass  # connection torn down under us; nothing to salvage
        finally:
            self._discard_incoming()
            worker._track(self.connection, add=False)

    # -- pieces ---------------------------------------------------------

    def _send(self, write_lock, message: Dict) -> None:
        payload = encode_frame(message)
        with write_lock:
            self.wfile.write(payload)
            self.wfile.flush()

    def _send_quietly(self, write_lock, message: Dict) -> None:
        """Send from a pool callback, where the client may already be gone."""
        try:
            self._send(write_lock, message)
        except (OSError, ValueError):
            pass

    def _handle_run(self, write_lock, message: Dict) -> None:
        worker: WorkerServer = self.server.owner
        run_id = message.get("id")
        try:
            spec = RunSpec.from_dict(message["spec"])
        except Exception as exc:
            self._send(write_lock, {
                "type": "error", "id": run_id,
                "message": f"undecodable spec: {exc}",
            })
            return
        directive = message.get("trace")
        if directive and worker.trace_dir is not None:
            # The client asked for trace reuse; point the spec at this
            # worker's own store (trace paths never cross the wire).
            from dataclasses import replace as _replace

            spec = _replace(
                spec,
                trace_store=worker.trace_dir,
                trace_mode=str(directive.get("mode") or "auto"),
            )
        digest = spec.digest()
        claimed = message.get("digest")
        if claimed is not None and claimed != digest:
            self._send(write_lock, {
                "type": "error", "id": run_id,
                "message": (
                    f"digest mismatch: client says {claimed}, worker computes "
                    f"{digest} — incompatible spec encodings"
                ),
            })
            return
        if worker.cache is not None:
            hit = worker.cache.get(digest)
            if hit is not None:
                worker._log(f"cache hit {spec.workload} seed={spec.seed} {spec.mode}")
                self._send(write_lock, {
                    "type": "result", "id": run_id,
                    "result": hit.to_dict(), "cached": True,
                })
                return
        if (
            directive
            and directive.get("stream")
            and spec.trace_store is not None
            and spec.trace_mode in ("auto", "replay")
        ):
            # The client holds this spec's trace; if our store does not,
            # park the spec and pull the trace over the wire once —
            # every later spec of the same committed path replays from
            # local disk.
            trace_digest = spec.trace_digest()
            parked = self._parked.get(trace_digest)
            if parked is not None:
                parked.append((run_id, spec, digest))
                return
            if not worker.trace_store.path(trace_digest).exists():
                self._parked[trace_digest] = [(run_id, spec, digest)]
                self._send(write_lock, {
                    "type": "trace_want", "id": run_id,
                    "digest": trace_digest,
                })
                return
        self._execute_run(write_lock, run_id, spec, digest)

    def _execute_run(self, write_lock, run_id, spec, digest: str) -> None:
        worker: WorkerServer = self.server.owner

        def deliver(result: RunResult) -> None:
            try:
                if worker.cache is not None:
                    worker.cache.put(digest, result)
                if result.trace_origin == "capture":
                    worker._note_trace_write()
                worker._log(
                    f"ran {spec.workload} scale={spec.scale:g} seed={spec.seed} "
                    f"{spec.mode} in {result.wall_time:.2f}s"
                    + (f" [trace {result.trace_origin}]"
                       if result.trace_origin else "")
                )
                self._send_quietly(write_lock, {
                    "type": "result", "id": run_id,
                    "result": result.to_dict(), "cached": False,
                    "trace": result.trace_origin,
                    "engine": result.engine_used,
                    "engine_hit": result.compiled_hit,
                })
            finally:
                worker._end_run()

        def failed(exc: BaseException) -> None:
            try:
                self._send_quietly(write_lock, {
                    "type": "error", "id": run_id,
                    "message": f"simulation failed: {exc!r}",
                })
            finally:
                worker._end_run()

        worker._begin_run()
        if worker.processes <= 1:
            try:
                result = _execute_spec(spec)
            except Exception as exc:
                failed(exc)
                return
            deliver(result)
        else:
            worker.pool.apply_async(
                _execute_spec, (spec,),
                callback=deliver, error_callback=failed,
            )

    # -- trace streaming ------------------------------------------------

    def _handle_trace_frame(self, write_lock, message: Dict) -> None:
        worker: WorkerServer = self.server.owner
        kind = message["type"]
        digest = message.get("digest")
        if not isinstance(digest, str) or digest not in self._parked:
            raise ProtocolError(f"{kind} for unrequested trace {digest!r}")
        if kind == "trace_unavailable":
            # The client's offer went stale (e.g. its store was gc'd
            # between offer and request): run the parked specs without
            # the trace — they interpret + capture locally instead.
            self._release_parked(write_lock, digest)
            return
        state = self._incoming.get(digest)
        if state is None:
            import hashlib

            path = worker.trace_store.path(digest)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(
                f".{digest}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            state = self._incoming[digest] = {
                "tmp": tmp,
                "handle": open(tmp, "wb"),
                "hasher": hashlib.sha256(),
                "bytes": 0,
            }
        if kind == "trace_data":
            import base64

            try:
                chunk = base64.b64decode(message.get("data") or "", validate=True)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"undecodable trace chunk: {exc}") from None
            state["handle"].write(chunk)
            state["hasher"].update(chunk)
            state["bytes"] += len(chunk)
            return
        # trace_end: verify and commit (or fall back to interpreting).
        state = self._incoming.pop(digest)
        state["handle"].close()
        failure = None
        if state["hasher"].hexdigest() != message.get("sha256"):
            failure = "checksum mismatch"
        elif state["bytes"] != message.get("bytes"):
            failure = (
                f"length mismatch ({state['bytes']} received, "
                f"{message.get('bytes')} announced)"
            )
        else:
            failure = worker.trace_store.adopt(state["tmp"], digest)
        if failure is not None:
            state["tmp"].unlink(missing_ok=True)
            worker._log(
                f"rejected streamed trace {digest[:12]}: {failure}; "
                "parked specs will interpret locally"
            )
        else:
            worker._log(
                f"received trace {digest[:12]} "
                f"({state['bytes']} bytes) into {worker.trace_store.root}"
            )
            worker._note_trace_write()
        self._release_parked(write_lock, digest)

    def _release_parked(self, write_lock, digest: str) -> None:
        for run_id, spec, spec_digest in self._parked.pop(digest, []):
            self._execute_run(write_lock, run_id, spec, spec_digest)

    def _discard_incoming(self) -> None:
        """Connection teardown: drop half-received stream temp files."""
        for state in self._incoming.values():
            try:
                state["handle"].close()
            except OSError:
                pass
            state["tmp"].unlink(missing_ok=True)
        self._incoming.clear()


class WorkerServer(_SimulationHost):
    """A ``repro-worker`` daemon, embeddable in-process for tests.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`address`).  ``processes <= 1`` simulates inline in the
    connection thread; larger values share one multiprocessing pool
    across all connections.  With ``cache_dir`` set, the worker answers
    warm specs from its sharded :class:`ResultCache` without
    re-simulating; with ``trace_dir`` set, it advertises a local
    :class:`~repro.trace.TraceStore` and serves trace-directive specs
    through it (interpret once, replay for every later request of the
    same committed path).  ``trace_max_bytes`` bounds that store: when a
    capture or a received wire stream pushes it past the budget, the
    least-recently-used traces are evicted (the daemon equivalent of
    ``repro trace gc --max-bytes``), so long-running workers stay
    bounded.  ``fail_after=N`` is a **test hook**: the
    worker drops every connection and stops accepting after its N-th
    ``run`` request, simulating a worker killed mid-grid.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        processes: int = 1,
        cache_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        trace_max_bytes: Optional[int] = None,
        fail_after: Optional[int] = None,
        verbose: bool = False,
        protocol_version: int = PROTOCOL_VERSION,
        cache_version: int = CACHE_VERSION,
    ):
        self._init_host(processes, cache_dir, trace_dir,
                        trace_max_bytes, verbose)
        self.fail_after = fail_after
        self.protocol_version = protocol_version
        self.cache_version = cache_version
        self.requests = 0
        self._inflight = 0
        self._draining = False
        self._drain_cond = threading.Condition(self._lock)
        self._connections: set = set()
        self._server = _WorkerTCPServer((host, port), _ConnectionHandler)
        self._server.owner = self
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def address_string(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "WorkerServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name=f"repro-worker:{self.address_string}",
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._server.serve_forever(poll_interval=0.2)

    def stop(self, force: bool = False) -> None:
        """Stop accepting connections and shut down.

        ``force=True`` additionally severs live connections mid-frame —
        the programmatic equivalent of ``kill -9`` on the daemon, used
        to exercise client-side rescheduling.
        """
        if force:
            with self._lock:
                victims = list(self._connections)
            for conn in victims:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:
                    pass
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._close_pool()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new specs, wait for in-flight ones
        to finish (results flushed to their clients), then stop.

        ``run`` frames received while draining are answered with an
        ``error`` frame, which the client requeues on its remaining
        workers; the connections stay open so pool callbacks for specs
        already running can still deliver.  Returns ``True`` when
        everything drained before ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._drain_cond:
            self._draining = True
            while self._inflight > 0:
                remaining = 0.5
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._drain_cond.wait(min(remaining, 0.5))
            drained = self._inflight == 0
        self.stop(force=True)
        return drained

    # -- handler support ------------------------------------------------

    def _begin_run(self) -> None:
        with self._lock:
            self._inflight += 1

    def _end_run(self) -> None:
        with self._drain_cond:
            self._inflight -= 1
            self._drain_cond.notify_all()

    def _track(self, conn, add: bool) -> None:
        with self._lock:
            if add:
                self._connections.add(conn)
            else:
                self._connections.discard(conn)

    def _note_request(self) -> bool:
        """Count a run request; False when the fail_after hook trips."""
        with self._lock:
            self.requests += 1
            tripped = (
                self.fail_after is not None and self.requests > self.fail_after
            )
        if tripped:
            # Stop synchronously (we are on a handler thread, not the
            # accept loop) so the listener is gone before the client can
            # burn spec retries against a half-dead worker.
            self.stop(force=True)
            return False
        return True

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[repro-worker {self.address_string}] {message}",
                  file=sys.stderr, flush=True)


def worker_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-worker`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Simulation worker daemon: accepts RunSpec frames from "
            "RemoteExecutor clients and streams RunResults back"
        ),
    )
    parser.add_argument(
        "--listen", default=f"127.0.0.1:{DEFAULT_PORT}", metavar="HOST:PORT",
        help=f"address to bind (default 127.0.0.1:{DEFAULT_PORT}; port 0 = ephemeral)",
    )
    parser.add_argument(
        "--processes", type=int, default=1, metavar="N",
        help="concurrent simulations (1 = inline in the connection thread)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sharded result cache; warm specs are answered from disk",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help=(
            "local trace store; specs sent with a trace directive are "
            "interpreted once and replayed from the committed-path trace"
        ),
    )
    parser.add_argument(
        "--trace-max-bytes", default=None, metavar="SIZE",
        help=(
            "byte budget for --trace-dir (e.g. 512M, 2G): least-recently-"
            "used traces are evicted whenever a capture or a received "
            "wire stream pushes the store past it"
        ),
    )
    parser.add_argument(
        "--coordinator", default=None, metavar="HOST:PORT",
        help=(
            "dial into a repro-coordinator and serve leased specs "
            "instead of listening for direct connections"
        ),
    )
    parser.add_argument(
        "--token", default=None, metavar="SECRET",
        help="shared secret for --coordinator (default: $REPRO_TOKEN)",
    )
    parser.add_argument(
        "--name", default=None, metavar="NAME",
        help="name prefix this worker registers under with the coordinator",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help=(
            "on SIGTERM/SIGINT, wait this long for in-flight specs to "
            "finish and flush before exiting (default 30)"
        ),
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="log one line per served request to stderr",
    )
    args = parser.parse_args(argv)
    trace_max_bytes = None
    if args.trace_max_bytes is not None:
        from ..storage import parse_size

        if args.trace_dir is None:
            parser.error("--trace-max-bytes requires --trace-dir")
        try:
            trace_max_bytes = parse_size(args.trace_max_bytes)
        except ValueError as exc:
            parser.error(str(exc))

    # Signals set an event instead of raising: the serving threads keep
    # running while the main thread drains in-flight specs gracefully.
    stop_signal = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 — signal handler shape
        stop_signal.set()

    try:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    except ValueError:
        pass  # not the main thread (embedded); rely on KeyboardInterrupt

    if args.coordinator is not None:
        try:
            worker = CoordinatorWorker(
                args.coordinator, processes=args.processes,
                cache_dir=args.cache_dir, trace_dir=args.trace_dir,
                trace_max_bytes=trace_max_bytes, token=args.token,
                name=args.name, verbose=args.verbose,
            ).start()
        except (OSError, ProtocolError, _FatalWorkerError) as exc:
            print(f"repro-worker: cannot register with {args.coordinator}: {exc}",
                  file=sys.stderr, flush=True)
            return 1
        print(
            f"repro-worker registered with {args.coordinator} as "
            f"{worker.worker_id} (protocol v{PROTOCOL_VERSION}, "
            f"cache v{CACHE_VERSION}, processes={args.processes})",
            file=sys.stderr, flush=True,
        )
        try:
            while not stop_signal.wait(0.2):
                if worker.stopped.is_set():
                    print("repro-worker: lost the coordinator, exiting",
                          file=sys.stderr, flush=True)
                    return 1
        except KeyboardInterrupt:
            pass
        print("repro-worker: draining before shutdown",
              file=sys.stderr, flush=True)
        worker.drain(timeout=args.drain_timeout)
        return 0

    host, port = parse_address(args.listen)
    server = WorkerServer(
        host=host, port=port, processes=args.processes,
        cache_dir=args.cache_dir, trace_dir=args.trace_dir,
        trace_max_bytes=trace_max_bytes,
        verbose=args.verbose,
    ).start()
    print(
        f"repro-worker listening on {server.address_string} "
        f"(protocol v{PROTOCOL_VERSION}, cache v{CACHE_VERSION}, "
        f"processes={args.processes})",
        file=sys.stderr, flush=True,
    )
    try:
        while not stop_signal.wait(0.2):
            pass
    except KeyboardInterrupt:
        pass
    print("repro-worker: draining before shutdown",
          file=sys.stderr, flush=True)
    server.drain(timeout=args.drain_timeout)
    return 0


# ----------------------------------------------------------------------
# Client: the "remote" executor.
# ----------------------------------------------------------------------

class _FatalWorkerError(Exception):
    """This worker can never serve us (e.g. protocol mismatch) — do not
    reconnect, but let the other workers keep draining the queue."""


class _Dispatch:
    """Shared work-stealing state between one map() call's client threads."""

    def __init__(self, specs: Sequence[RunSpec], max_attempts: int):
        self.cond = threading.Condition()
        self.pending = deque((i, spec, 0) for i, spec in enumerate(specs))
        self.remaining = len(specs)
        self.max_attempts = max_attempts
        self.failure: Optional[str] = None
        self.worker_notes: Dict[str, str] = {}
        self.done_queue: Queue = Queue()
        self.live_workers = 0

    def stopped(self) -> bool:
        return self.failure is not None or self.remaining == 0

    def take_nowait(self):
        with self.cond:
            if self.stopped() or not self.pending:
                return None
            return self.pending.popleft()

    def take(self):
        """Next work item, waiting for requeues; None when dispatch ends."""
        with self.cond:
            while True:
                if self.stopped():
                    return None
                if self.pending:
                    return self.pending.popleft()
                self.cond.wait(0.05)

    def requeue(self, items, reason: str) -> int:
        """Put dropped in-flight items back; give up past max_attempts."""
        requeued = 0
        with self.cond:
            for index, spec, attempts in items:
                attempts += 1
                if attempts >= self.max_attempts:
                    self.failure = (
                        f"spec #{index} ({spec.workload!r} seed={spec.seed} "
                        f"{spec.mode}) failed {attempts} times; last error: "
                        f"{reason}"
                    )
                else:
                    self.pending.append((index, spec, attempts))
                    requeued += 1
            self.cond.notify_all()
        return requeued

    def complete(self, index: int, spec: RunSpec, result: RunResult) -> None:
        with self.cond:
            self.remaining -= 1
            self.cond.notify_all()
        self.done_queue.put((index, spec, result))

    def abort(self, reason: str) -> None:
        with self.cond:
            if self.failure is None:
                self.failure = reason
            self.cond.notify_all()

    def note_worker(self, address: str, note: str) -> None:
        with self.cond:
            self.worker_notes[address] = note

    def worker_started(self) -> None:
        with self.cond:
            self.live_workers += 1

    def worker_exited(self) -> None:
        with self.cond:
            self.live_workers -= 1
            self.cond.notify_all()


class _WorkerClient(threading.Thread):
    """One connection (plus reconnects) to one worker address."""

    def __init__(self, state: _Dispatch, address: Tuple[str, int],
                 executor: "RemoteExecutor"):
        super().__init__(daemon=True, name=f"remote-client:{address[0]}:{address[1]}")
        self.state = state
        self.address = address
        self.executor = executor
        self.label = f"{address[0]}:{address[1]}"
        self.inflight: Dict[int, Tuple[int, RunSpec, int]] = {}
        self.trace_capable = False
        self._trace_stores: Dict[str, object] = {}
        self.stats = {
            "dispatched": 0, "completed": 0, "cache_hits": 0,
            "requeued": 0, "reconnects": 0,
            "trace_captures": 0, "trace_hits": 0,
            "trace_streams": 0, "trace_stream_bytes": 0,
        }

    # -- lifecycle ------------------------------------------------------

    def run(self):
        self.state.worker_started()
        attempts_left = self.executor.reconnect_attempts
        try:
            while not self.state.stopped():
                sock = self._connect()
                if sock is None:
                    self.state.note_worker(self.label, "unreachable")
                    return
                try:
                    self._serve(sock)
                    return  # clean drain: dispatch finished
                except _FatalWorkerError as exc:
                    self.state.note_worker(self.label, str(exc))
                    return
                except (OSError, ProtocolError) as exc:
                    self._drop_inflight(f"{type(exc).__name__}: {exc}")
                    self.stats["reconnects"] += 1
                    self.state.note_worker(
                        self.label, f"connection lost: {exc}"
                    )
                    attempts_left -= 1
                    if attempts_left < 0:
                        return
                    time.sleep(self.executor.reconnect_delay)
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
        finally:
            self._drop_inflight("client thread exited")
            self.state.worker_exited()

    def _connect(self) -> Optional[socket.socket]:
        delay = self.executor.reconnect_delay
        for attempt in range(self.executor.connect_attempts):
            if self.state.stopped():
                return None
            try:
                sock = socket.create_connection(
                    self.address, timeout=self.executor.timeout
                )
                # Framed request/response traffic: Nagle + delayed ACK
                # would stall back-to-back small frames (~40ms each).
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError:
                if attempt + 1 < self.executor.connect_attempts:
                    time.sleep(delay)
                    delay = min(delay * 2, 1.0)
        return None

    def _drop_inflight(self, reason: str) -> None:
        dropped, self.inflight = self.inflight, {}
        if dropped:
            self.stats["requeued"] += len(dropped)
            self.state.requeue(dropped.values(), reason)

    # -- the protocol conversation --------------------------------------

    def _serve(self, sock: socket.socket) -> None:
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        window = self._handshake(rfile, wfile)
        next_id = self.stats["dispatched"]  # unique per thread lifetime
        while True:
            # Keep the pipeline full: one frame per free window slot.
            while len(self.inflight) < window:
                item = self.state.take_nowait()
                if item is None:
                    break
                next_id += 1
                self._send_run(wfile, next_id, item)
            if not self.inflight:
                item = self.state.take()  # blocks for requeues
                if item is None:
                    self._send_bye(wfile)
                    return
                next_id += 1
                self._send_run(wfile, next_id, item)
            self._receive_one(rfile, wfile)

    def _handshake(self, rfile, wfile) -> int:
        hello = _read_frame(rfile)
        if hello is None:
            raise ProtocolError("worker closed the connection before hello")
        if hello.get("type") == "error":
            raise _FatalWorkerError(hello.get("message", "worker refused us"))
        if hello.get("type") != "hello":
            raise ProtocolError(f"expected hello, got {hello.get('type')!r}")
        if hello.get("protocol") != PROTOCOL_VERSION:
            raise _FatalWorkerError(
                f"protocol version mismatch: worker speaks "
                f"{hello.get('protocol')!r}, client speaks {PROTOCOL_VERSION}"
            )
        if hello.get("cache_version") != CACHE_VERSION:
            raise _FatalWorkerError(
                f"cache version mismatch: worker digests with "
                f"v{hello.get('cache_version')!r}, client with v{CACHE_VERSION}"
            )
        wfile.write(encode_frame({
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "cache_version": CACHE_VERSION,
            "client": "repro-remote-executor",
        }))
        wfile.flush()
        self.trace_capable = bool(hello.get("trace_store"))
        try:
            advertised = int(hello.get("processes") or 1)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed hello frame: {exc!r}") from None
        return max(1, min(advertised * 2, 32))

    def _local_trace_path(self, spec: RunSpec):
        """Path of this spec's trace in the *client's* store, or ``None``.

        Never creates the store directory: a client that has not
        captured anything locally (the common remote case) should not
        grow an empty store as a side effect of offering streams.
        """
        if spec.trace_store is None or not os.path.isdir(spec.trace_store):
            return None
        store = self._trace_stores.get(spec.trace_store)
        if store is None:
            from ..trace import TraceStore

            store = TraceStore(spec.trace_store)
            self._trace_stores[spec.trace_store] = store
        path = store.path(spec.trace_digest())
        return path if path.exists() else None

    def _send_run(self, wfile, run_id: int, item) -> None:
        index, spec, attempts = item
        self.inflight[run_id] = item
        self.stats["dispatched"] += 1
        # The client's trace-store *path* is local and never shipped;
        # a capable worker gets a directive to use its own store.
        wire_spec = spec.to_dict()
        wire_spec.pop("trace_store", None)
        trace_mode = wire_spec.pop("trace_mode", "auto")
        frame = {
            "type": "run",
            "id": run_id,
            "spec": wire_spec,
            "digest": spec.digest(),
        }
        if spec.trace_store is not None and self.trace_capable:
            directive = {"mode": trace_mode}
            if self._local_trace_path(spec) is not None:
                # We hold the committed path on local disk; offer to
                # stream it should the worker's store turn out cold.
                directive["stream"] = True
            frame["trace"] = directive
        wfile.write(encode_frame(frame))
        wfile.flush()

    def _send_bye(self, wfile) -> None:
        try:
            wfile.write(encode_frame({"type": "bye"}))
            wfile.flush()
        except (OSError, ValueError):
            pass  # the work is done; a lost goodbye costs nothing

    def _stream_trace(self, wfile, digest: str, path) -> None:
        """Ship one trace file's bytes to the worker, chunked + checksummed."""
        import base64
        import hashlib

        hasher = hashlib.sha256()
        sent = 0
        try:
            handle = open(path, "rb")
        except OSError:
            # Evicted between the exists() probe and the open (a local
            # gc race, not a connection problem): same graceful path as
            # a stale offer.
            wfile.write(encode_frame({
                "type": "trace_unavailable", "digest": digest,
            }))
            wfile.flush()
            return
        with handle:
            while True:
                chunk = handle.read(TRACE_CHUNK_BYTES)
                if not chunk:
                    break
                hasher.update(chunk)
                sent += len(chunk)
                wfile.write(encode_frame({
                    "type": "trace_data", "digest": digest,
                    "data": base64.b64encode(chunk).decode("ascii"),
                }))
        wfile.write(encode_frame({
            "type": "trace_end", "digest": digest,
            "sha256": hasher.hexdigest(), "bytes": sent,
        }))
        wfile.flush()
        self.stats["trace_streams"] += 1
        self.stats["trace_stream_bytes"] += sent

    def _receive_one(self, rfile, wfile) -> None:
        message = _read_frame(rfile)
        if message is None:
            raise ProtocolError("worker closed the connection mid-batch")
        kind = message["type"]
        if kind == "trace_want":
            run_id = message.get("id")
            item = self.inflight.get(run_id)
            if item is None:
                raise ProtocolError(f"trace_want for unknown run id {run_id!r}")
            digest = message.get("digest")
            path = self._local_trace_path(item[1])
            if path is None:
                # Evicted between offer and request (a gc race): the
                # worker runs the spec without the trace instead.
                wfile.write(encode_frame({
                    "type": "trace_unavailable", "digest": digest,
                }))
                wfile.flush()
            else:
                self._stream_trace(wfile, digest, path)
            return
        if kind == "result":
            run_id = message.get("id")
            item = self.inflight.get(run_id)
            if item is None:
                raise ProtocolError(f"result for unknown run id {run_id!r}")
            index, spec, attempts = item
            try:
                result = RunResult.from_dict(message["result"])
            except (KeyError, TypeError, ValueError) as exc:
                # Well-formed JSON, ill-formed payload (version-skewed
                # worker?).  The spec is still in ``inflight``, so the
                # connection drop triggered by this error requeues it.
                raise ProtocolError(f"malformed result frame: {exc!r}") from None
            self.inflight.pop(run_id)
            result.cached = bool(message.get("cached"))
            engine = message.get("engine")
            if engine:
                result.engine_used = str(engine)
                result.compiled_hit = bool(message.get("engine_hit"))
            origin = message.get("trace")
            if origin in ("capture", "replay"):
                result.trace_origin = origin
                self.stats["trace_captures" if origin == "capture" else "trace_hits"] += 1
            self.stats["completed"] += 1
            if result.cached:
                self.stats["cache_hits"] += 1
            self.state.complete(index, spec, result)
        elif kind == "error":
            run_id = message.get("id")
            reason = message.get("message", "unspecified worker error")
            if run_id is None:
                raise ProtocolError(f"worker error: {reason}")
            item = self.inflight.pop(run_id, None)
            if item is not None:
                self.stats["requeued"] += 1
                self.state.requeue([item], reason)
        elif kind == "pong":
            pass
        else:
            raise ProtocolError(f"unexpected frame type {kind!r}")


@register_executor("remote")
class RemoteExecutor(Executor):
    """Fan a spec batch out to ``repro-worker`` daemons over TCP.

    ``workers`` is a list of ``"host:port"`` strings (or ``(host, port)``
    tuples); when omitted, the ``REPRO_WORKERS`` environment variable
    supplies a comma-separated list — which is what lets a plain
    ``Sweep.run(executor="remote")`` work with no extra plumbing.

    Dispatch is work-stealing: all connections pull from one shared
    queue, each pipelining up to twice the worker's advertised process
    count.  A worker that dies mid-batch has its in-flight specs
    requeued for the remaining workers and is reconnected with backoff;
    a spec that keeps failing (``max_attempts``) aborts the batch with
    the underlying error.  Per-worker telemetry lands in
    :attr:`telemetry` after each ``map()``.
    """

    def __init__(
        self,
        workers: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        processes: int = 1,
        timeout: float = 300.0,
        connect_attempts: int = 5,
        reconnect_attempts: int = 2,
        reconnect_delay: float = 0.05,
        max_attempts: int = 3,
    ):
        del processes  # width lives on the workers, not the client
        if workers is None:
            configured = os.environ.get(WORKERS_ENV, "")
            workers = [
                part.strip() for part in configured.split(",") if part.strip()
            ]
        if not workers:
            raise ValueError(
                "RemoteExecutor needs worker addresses: pass workers=[...] "
                f"or set {WORKERS_ENV}=host:port,host:port"
            )
        self.workers = [parse_address(worker) for worker in workers]
        self.timeout = timeout
        self.connect_attempts = connect_attempts
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self.max_attempts = max_attempts
        self.batches = 0
        self.dispatched = 0
        self.completed = 0
        #: address -> counters from the most recent ``map()`` call.
        self.telemetry: Dict[str, Dict[str, int]] = {}

    def map(self, specs, on_result=None):
        specs = list(specs)
        if not specs:
            return []
        self.batches += 1
        self.dispatched += len(specs)
        state = _Dispatch(specs, max_attempts=self.max_attempts)
        clients = [
            _WorkerClient(state, address, self) for address in self.workers
        ]
        for client in clients:
            client.start()
        results: List[Optional[RunResult]] = [None] * len(specs)
        try:
            filled = 0
            while filled < len(specs):
                if state.failure is not None:
                    break
                if not any(client.is_alive() for client in clients):
                    # Late completions may still sit in the queue; drain
                    # below decides whether this is actually a failure.
                    if state.done_queue.empty():
                        break
                try:
                    index, spec, result = state.done_queue.get(timeout=0.05)
                except Empty:
                    continue
                results[index] = result
                filled += 1
                self.completed += 1
                if on_result is not None:
                    on_result(index, spec, result)
        finally:
            failure = state.failure
            state.abort("dispatch loop exited")
            for client in clients:
                client.join(timeout=self.timeout)
            self.telemetry = {
                client.label: dict(client.stats) for client in clients
            }
        while True:  # completions that raced the loop exit
            try:
                index, spec, result = state.done_queue.get_nowait()
            except Empty:
                break
            if results[index] is None:
                results[index] = result
                self.completed += 1
                if on_result is not None:
                    on_result(index, spec, result)
        missing = [index for index, result in enumerate(results) if result is None]
        if missing:
            notes = "; ".join(
                f"{address}: {note}"
                for address, note in sorted(state.worker_notes.items())
            ) or "no worker diagnostics"
            reason = failure or f"all workers exited ({notes})"
            raise RuntimeError(
                f"remote executor finished {len(specs) - len(missing)}/"
                f"{len(specs)} specs: {reason}"
            )
        return results


# ----------------------------------------------------------------------
# Coordinator-registered worker.
# ----------------------------------------------------------------------

class CoordinatorWorker(_SimulationHost):
    """A ``repro-worker`` that dials into a ``repro-coordinator``
    instead of listening: ``repro-worker --coordinator host:port``.

    The worker opens one TCP connection, sends a ``register`` frame
    (token, protocol and cache version, process count), and then serves
    ``run`` frames the coordinator pushes under its lease.  A heartbeat
    frame every ``heartbeat_seconds`` (announced by the coordinator at
    registration) keeps the lease alive while long specs simulate; if
    the connection drops, the worker reconnects and re-registers with
    backoff while the coordinator reschedules whatever it was leasing.

    Simulation behaviour — result cache, trace store with byte budget,
    inline vs pooled execution — is identical to :class:`WorkerServer`
    (both share :class:`_SimulationHost`).  ``fail_after=N`` is a test
    hook: the worker severs its connection after its N-th ``run``
    frame, simulating a worker killed mid-grid.
    """

    def __init__(
        self,
        coordinator: Union[str, Tuple[str, int]],
        processes: int = 1,
        cache_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        trace_max_bytes: Optional[int] = None,
        token: Optional[str] = None,
        name: Optional[str] = None,
        fail_after: Optional[int] = None,
        verbose: bool = False,
        timeout: float = 300.0,
        reconnect_attempts: int = 5,
        reconnect_delay: float = 0.2,
        protocol_version: int = PROTOCOL_VERSION,
        cache_version: int = CACHE_VERSION,
    ):
        self._init_host(processes, cache_dir, trace_dir,
                        trace_max_bytes, verbose)
        if isinstance(coordinator, tuple) or ":" in str(coordinator):
            self.coordinator = parse_address(coordinator)
        else:
            from ..serve.client import DEFAULT_PORT as _COORDINATOR_PORT

            self.coordinator = (str(coordinator).strip(), _COORDINATOR_PORT)
        if token is None:
            from ..serve.client import TOKEN_ENV

            token = os.environ.get(TOKEN_ENV) or None
        self.token = token
        self.name = name
        self.fail_after = fail_after
        self.timeout = timeout
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self.protocol_version = protocol_version
        self.cache_version = cache_version
        self.requests = 0
        self.completed = 0
        self.worker_id: Optional[str] = None
        self.heartbeat_seconds = 5.0
        #: Set when the worker gives up — stopped, failed, or drained.
        self.stopped = threading.Event()
        self._draining = False
        self._inflight = 0
        self._drain_cond = threading.Condition(self._lock)
        self._write_lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._thread: Optional[threading.Thread] = None
        self._heartbeat: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "CoordinatorWorker":
        """Register, then serve on daemon threads; returns self.

        Registration happens synchronously so a bad token or a version
        mismatch raises here instead of dying silently in a thread.
        """
        self._connect()
        label = f"{self.coordinator[0]}:{self.coordinator[1]}"
        self._thread = threading.Thread(
            target=self._serve_loop, daemon=True,
            name=f"repro-worker@{label}",
        )
        self._thread.start()
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop, daemon=True,
            name=f"repro-worker-heartbeat@{label}",
        )
        self._heartbeat.start()
        return self

    def _connect(self) -> None:
        sock = socket.create_connection(self.coordinator, timeout=self.timeout)
        sock.settimeout(None)  # blocking reads; stop() severs the socket
        # Same framed-message traffic as the remote protocol: defeat the
        # Nagle/delayed-ACK stall on small back-to-back frames.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        frame = {
            "type": "register",
            "protocol": self.protocol_version,
            "cache_version": self.cache_version,
            "processes": self.processes,
            "trace_store": self.trace_dir is not None,
        }
        if self.token:
            frame["token"] = self.token
        if self.name:
            frame["name"] = self.name
        try:
            wfile.write(encode_frame(frame))
            wfile.flush()
            reply = _read_frame(rfile)
        except OSError:
            sock.close()
            raise
        if reply is None:
            sock.close()
            raise ProtocolError(
                "coordinator closed the connection during registration"
            )
        if reply.get("type") == "error":
            sock.close()
            raise _FatalWorkerError(
                reply.get("message", "registration refused")
            )
        if reply.get("type") != "registered":
            sock.close()
            raise ProtocolError(
                f"expected registered, got {reply.get('type')!r}"
            )
        self.worker_id = reply.get("worker")
        try:
            self.heartbeat_seconds = float(
                reply.get("heartbeat_seconds") or 5.0
            )
        except (TypeError, ValueError):
            self.heartbeat_seconds = 5.0
        self._sock, self._rfile, self._wfile = sock, rfile, wfile
        self._log(f"registered as {self.worker_id}")

    def _serve_loop(self) -> None:
        attempts_left = self.reconnect_attempts
        try:
            while not self.stopped.is_set():
                try:
                    self._serve_connection()
                    return  # clean bye from the coordinator
                except (OSError, ProtocolError, ValueError) as exc:
                    if self.stopped.is_set() or self._draining:
                        return
                    self._log(f"coordinator connection lost: {exc}")
                while not self.stopped.is_set():
                    if attempts_left <= 0:
                        self._log("giving up on the coordinator")
                        return
                    attempts_left -= 1
                    time.sleep(self.reconnect_delay)
                    try:
                        self._connect()
                        attempts_left = self.reconnect_attempts
                        break
                    except (OSError, ProtocolError, _FatalWorkerError) as exc:
                        self._log(f"re-registration failed: {exc}")
        finally:
            self.stopped.set()

    def _serve_connection(self) -> None:
        while True:
            message = _read_frame(self._rfile)
            if message is None or message["type"] == "bye":
                return
            kind = message["type"]
            if kind == "run":
                self._handle_run(message)
            elif kind == "ping":
                self._send_quietly({"type": "pong"})
            elif kind == "error":
                self._log(f"coordinator error: {message.get('message')}")
            # pong / anything else: ignore

    def stop(self, send_bye: bool = True) -> None:
        already = self.stopped.is_set()
        self.stopped.set()
        if send_bye and not already:
            self._send_quietly({"type": "bye"})
        self._sever()
        current = threading.current_thread()
        for thread in (self._thread, self._heartbeat):
            if thread is not None and thread is not current:
                thread.join(timeout=5)
        self._thread = self._heartbeat = None
        self._close_pool()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: announce the drain (the coordinator stops
        leasing to us), finish and flush in-flight specs, then leave.
        Returns ``True`` when everything drained before ``timeout``."""
        with self._drain_cond:
            self._draining = True
        self._send_quietly({"type": "draining"})
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._drain_cond:
            while self._inflight > 0:
                remaining = 0.5
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._drain_cond.wait(min(remaining, 0.5))
            drained = self._inflight == 0
        self.stop()
        return drained

    def _sever(self) -> None:
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    # -- serving --------------------------------------------------------

    def _send(self, message: Dict) -> None:
        with self._write_lock:
            self._wfile.write(encode_frame(message))
            self._wfile.flush()

    def _send_quietly(self, message: Dict) -> None:
        try:
            self._send(message)
        except (OSError, ValueError, AttributeError):
            pass  # connection gone; the coordinator's lease recovers

    def _end_run(self) -> None:
        with self._drain_cond:
            self._inflight -= 1
            self._drain_cond.notify_all()

    def _heartbeat_loop(self) -> None:
        # Heartbeats keep flowing during a drain: they renew the lease
        # on the in-flight specs we are still finishing.
        while not self.stopped.wait(self.heartbeat_seconds):
            self._send_quietly({"type": "heartbeat"})

    def _handle_run(self, message: Dict) -> None:
        run_id = message.get("id")
        self.requests += 1
        if self.fail_after is not None and self.requests > self.fail_after:
            # Test hook: a worker killed mid-grid.  Sever without bye or
            # drain; the coordinator's lease machinery must recover.
            self.stopped.set()
            self._sever()
            raise OSError("fail_after test hook tripped")
        if self._draining:
            self._send_quietly({
                "type": "error", "id": run_id,
                "message": "worker is draining; resubmit elsewhere",
            })
            return
        try:
            spec = RunSpec.from_dict(message["spec"])
        except Exception as exc:
            self._send_quietly({
                "type": "error", "id": run_id,
                "message": f"undecodable spec: {exc}",
            })
            return
        directive = message.get("trace")
        if directive and self.trace_dir is not None:
            from dataclasses import replace as _replace

            spec = _replace(
                spec,
                trace_store=self.trace_dir,
                trace_mode=str(directive.get("mode") or "auto"),
            )
        digest = spec.digest()
        claimed = message.get("digest")
        if claimed is not None and claimed != digest:
            self._send_quietly({
                "type": "error", "id": run_id,
                "message": (
                    f"digest mismatch: coordinator says {claimed}, worker "
                    f"computes {digest} — incompatible spec encodings"
                ),
            })
            return
        if self.cache is not None:
            hit = self.cache.get(digest)
            if hit is not None:
                self._log(
                    f"cache hit {spec.workload} seed={spec.seed} {spec.mode}"
                )
                self._send_quietly({
                    "type": "result", "id": run_id,
                    "result": hit.to_dict(), "cached": True,
                })
                return

        with self._lock:
            self._inflight += 1

        def deliver(result: RunResult) -> None:
            try:
                if self.cache is not None:
                    self.cache.put(digest, result)
                if result.trace_origin == "capture":
                    self._note_trace_write()
                self.completed += 1
                self._log(
                    f"ran {spec.workload} scale={spec.scale:g} "
                    f"seed={spec.seed} {spec.mode} in {result.wall_time:.2f}s"
                    + (f" [trace {result.trace_origin}]"
                       if result.trace_origin else "")
                )
                self._send_quietly({
                    "type": "result", "id": run_id,
                    "result": result.to_dict(), "cached": False,
                    "trace": result.trace_origin,
                    "engine": result.engine_used,
                    "engine_hit": result.compiled_hit,
                })
            finally:
                self._end_run()

        def failed(exc: BaseException) -> None:
            try:
                self._send_quietly({
                    "type": "error", "id": run_id,
                    "message": f"simulation failed: {exc!r}",
                })
            finally:
                self._end_run()

        if self.processes <= 1:
            try:
                result = _execute_spec(spec)
            except Exception as exc:
                failed(exc)
                return
            deliver(result)
        else:
            self.pool.apply_async(
                _execute_spec, (spec,),
                callback=deliver, error_callback=failed,
            )

    def _log(self, message: str) -> None:
        if self.verbose:
            label = self.worker_id or f"@{self.coordinator[0]}:{self.coordinator[1]}"
            print(f"[repro-worker {label}] {message}",
                  file=sys.stderr, flush=True)


if __name__ == "__main__":  # pragma: no cover — `python -m repro.sim.remote`
    sys.exit(worker_main())
