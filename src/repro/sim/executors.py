"""Pluggable execution backends for :class:`~repro.sim.sweep.Sweep`.

An :class:`Executor` turns a batch of picklable ``RunSpec`` descriptions
into :class:`~repro.sim.results.RunResult` objects.  Three strategies
ship with the package:

* :class:`SerialExecutor` — run every spec in-process, in order;
* :class:`ProcessPoolExecutor` — a throwaway ``multiprocessing.Pool``
  per batch (the historical ``Sweep.run(processes=N)`` behaviour);
* :class:`WorkerPoolExecutor` — a persistent pool that stays alive
  across batches, dispatches work via ``imap_unordered`` so idle
  workers steal the next spec, and reports per-spec completion through
  an optional callback.

A fourth, the distributed :class:`~repro.sim.remote.RemoteExecutor`
(``"remote"``), lives in :mod:`repro.sim.remote` alongside its wire
protocol and the ``repro-worker`` daemon.

All executors honour the same contract: ``map(specs, on_result=None)``
returns results **in spec order**, regardless of completion order, and
``on_result(index, spec, result)`` fires once per spec as its result
becomes available.  Because every spec carries its own seed, results
are bit-identical across executors and worker counts.

Third-party backends plug in through :func:`register_executor`::

    from repro.sim import Executor, register_executor

    @register_executor("my-cluster")
    class ClusterExecutor(Executor):
        def map(self, specs, on_result=None): ...
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, Type, Union

from .registry import Registry, validate_options
from .results import RunResult

#: ``on_result(index, spec, result)`` — fired once per completed spec.
ProgressCallback = Callable[[int, object, RunResult], None]


def _execute_spec(spec) -> RunResult:
    """Worker entry point: run one spec (module-level for pickling)."""
    return spec.session().run()


def _execute_indexed(item):
    """``(index, spec) -> (index, result)`` — lets unordered dispatch
    reassemble results into spec order in the parent process."""
    index, spec = item
    return index, _execute_spec(spec)


def _pool_context():
    # Prefer fork: workers inherit the interpreter state (registries,
    # sys.path) without re-importing __main__, and start instantly.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class Executor:
    """Strategy interface: execute a batch of ``RunSpec`` objects.

    Subclasses implement :meth:`map`; :meth:`close` releases any
    persistent resources (pools, connections).  Executors are context
    managers, so ``with WorkerPoolExecutor(4) as pool: ...`` cleans up.
    """

    #: Registry name (set by :func:`register_executor`).
    name: str = "?"

    def map(
        self,
        specs: Sequence,
        on_result: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        """Execute ``specs``, returning results in spec order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release persistent resources.  Idempotent; default is a no-op."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: name -> Executor subclass (see :func:`register_executor`).
EXECUTORS = Registry("executor", catalog="registered backends")


def register_executor(name: str, *, replace: bool = False):
    """Class decorator registering an :class:`Executor` under ``name``.

    Duplicate names raise ``ValueError``; pass ``replace=True`` to
    deliberately override a built-in backend.
    """

    def decorator(cls: Type[Executor]) -> Type[Executor]:
        cls.name = name
        EXECUTORS.register(name, cls, replace=replace)
        return cls

    return decorator


def executor_names() -> List[str]:
    """Registered backend names, in registration order."""
    return list(EXECUTORS)


def get_executor(name: str) -> Type[Executor]:
    """The registered :class:`Executor` subclass for ``name``."""
    return EXECUTORS.get(name)


def list_executors() -> List[str]:
    """Uniform ``list_*`` alias for :func:`executor_names`."""
    return executor_names()


def create_executor(
    executor: Union[str, Executor, None],
    processes: int = 1,
    **options,
) -> Executor:
    """Resolve a ``Sweep.run`` executor argument to an instance.

    ``None`` selects the historical default — a throwaway process pool
    that degrades to serial execution when ``processes <= 1`` or the
    batch has a single spec.  A string is looked up in the registry; an
    :class:`Executor` instance passes through untouched (the caller
    keeps ownership and must ``close()`` it).  Extra keyword ``options``
    are forwarded to the backend constructor (e.g. ``workers=[...]`` for
    the ``remote`` backend); options the backend does not accept raise
    ``TypeError`` naming the valid ones.
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        executor = "process"
    cls = EXECUTORS.get(executor)
    validate_options("executor", executor, cls, options, reserved=("processes",))
    return cls(processes=processes, **options)


@register_executor("serial")
class SerialExecutor(Executor):
    """Run every spec in the calling process, in spec order."""

    def __init__(self, processes: int = 1):
        # ``processes`` is accepted (and ignored) so the factory can
        # construct any backend uniformly.
        del processes

    def map(self, specs, on_result=None):
        results = []
        for index, spec in enumerate(specs):
            result = _execute_spec(spec)
            if on_result is not None:
                on_result(index, spec, result)
            results.append(result)
        return results


@register_executor("process")
class ProcessPoolExecutor(Executor):
    """A throwaway ``multiprocessing.Pool`` per batch.

    This is ``Sweep.run(processes=N)``'s historical behaviour,
    extracted: a pool spawned for the batch and torn down when it
    completes.  Single-spec batches and ``processes <= 1`` run
    serially, exactly as before.  Dispatch streams through ``imap`` so
    ``on_result`` fires (in spec order) as results arrive rather than
    after the whole batch.
    """

    def __init__(self, processes: Optional[int] = None):
        # Only None means "pick for me": 0 and negative values stay
        # put, landing in the serial path below — the historical
        # meaning of Sweep.run(processes=0).
        self.processes = (os.cpu_count() or 1) if processes is None else processes

    def map(self, specs, on_result=None):
        specs = list(specs)
        if self.processes <= 1 or len(specs) <= 1:
            return SerialExecutor().map(specs, on_result)
        results = []
        with _pool_context().Pool(min(self.processes, len(specs))) as pool:
            for index, result in enumerate(pool.imap(_execute_spec, specs)):
                results.append(result)
                if on_result is not None:
                    on_result(index, specs[index], result)
        return results


@register_executor("pool")
class WorkerPoolExecutor(Executor):
    """A persistent worker pool reused across ``map()`` calls.

    The pool is spawned lazily on first use and stays alive until
    :meth:`close`, so repeated ``Sweep.run()`` calls skip worker
    startup.  Specs are dispatched through ``imap_unordered`` with a
    small chunksize: workers steal the next spec the moment they go
    idle, which keeps long and short runs balanced, and ``on_result``
    fires in **completion** order while the returned list stays in spec
    order.  Telemetry counters (:attr:`batches`, :attr:`dispatched`,
    :attr:`completed`) accumulate across batches.
    """

    def __init__(self, processes: Optional[int] = None, chunksize: int = 1):
        self.processes = (os.cpu_count() or 1) if processes is None else processes
        self.chunksize = chunksize
        self._pool = None
        self.batches = 0
        self.dispatched = 0
        self.completed = 0

    @property
    def pool(self):
        """The live pool, spawned on first access."""
        if self._pool is None:
            self._pool = _pool_context().Pool(self.processes)
        return self._pool

    def map(self, specs, on_result=None):
        specs = list(specs)
        if not specs:
            return []
        self.batches += 1
        self.dispatched += len(specs)
        if self.processes <= 1:
            results = SerialExecutor().map(specs, on_result)
            self.completed += len(results)
            return results
        results: List[Optional[RunResult]] = [None] * len(specs)
        unordered = self.pool.imap_unordered(
            _execute_indexed, list(enumerate(specs)),
            chunksize=self.chunksize,
        )
        while True:
            try:
                index, result = next(unordered)
            except StopIteration:
                break
            except Exception:
                # A worker raised: the pool may be wedged, so tear it
                # down rather than reuse it.  The next map() respawns.
                # (Parent-side on_result errors propagate below
                # *without* killing the healthy pool.  A worker killed
                # outright — OOM, SIGKILL — hangs here instead: a
                # multiprocessing.Pool limitation, same as the
                # historical pool.map path.)
                self.close()
                raise
            results[index] = result
            self.completed += 1
            if on_result is not None:
                on_result(index, specs[index], result)
        return results

    def close(self):
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
