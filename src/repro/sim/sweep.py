"""The :class:`Sweep` driver: parameter grids over :class:`Session` runs.

A sweep expands ``{workload} x {scale} x {seed} x {mode}`` into
picklable :class:`RunSpec` descriptions, executes them through a
pluggable :class:`~repro.sim.executors.Executor` backend — serial,
throwaway process pool, or a persistent worker pool reused across
calls — and memoizes completed runs in an on-disk sharded
:class:`~repro.sim.cache.ResultCache`.  Every run carries its own seed
in its spec, so results are bit-identical regardless of backend, worker
count or execution order::

    from repro.sim import Sweep

    grid = Sweep(workloads=["pi", "dop"], seeds=range(4), cache_dir=".pbs-cache")
    results = grid.run(processes=4)
    print(results.get(workload="pi", seed=0, mode="pbs").predictor("tournament").mpki)
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .cache import ResultCache, spec_digest
# _execute_spec moved to executors; re-imported so existing references
# to repro.sim.sweep._execute_spec (and pickles of it) keep resolving.
from .executors import Executor, create_executor
from .executors import _execute_spec  # noqa: F401  (backwards compat)
from .registry import baseline_predictors, workload_names
from .results import RunResult
from .session import DEFAULT_SCALE, DEFAULT_SEED, Session

MODES = ("base", "pbs")


def _core_config_to_dict(config) -> Dict:
    """Canonical JSON form of a CoreConfig (enum latency keys by name)."""
    data = asdict(config)
    data["latencies"] = {
        op.name: latency for op, latency in config.latencies.items()
    }
    return data


def _core_config_from_dict(data: Dict):
    from ..isa.opcodes import OpClass
    from ..pipeline import CoreConfig

    data = dict(data)
    data["latencies"] = {
        OpClass[name]: latency for name, latency in data["latencies"].items()
    }
    return CoreConfig(**data)


@dataclass
class RunSpec:
    """A picklable, cache-keyable description of one Session run.

    ``trace_store``/``trace_mode`` point the run at a local
    :class:`~repro.trace.TraceStore` directory (replay the committed
    path when the trace exists, interpret + capture otherwise).  They
    describe *where* the run executes, not *what* it computes, so they
    are excluded from :meth:`cache_key` — results stay bit-identical
    and cache digests stay stable with or without a trace store.

    ``engine``/``engine_options`` select the execution tier
    (:mod:`repro.engines`) the same way: tiers may change speed, never
    results, so they ride the wire to workers but stay out of the cache
    key.
    """

    workload: str
    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    mode: str = "base"
    predictors: Tuple[str, ...] = ()
    harness_options: Dict = field(default_factory=dict)
    pbs_config: Optional[Dict] = None
    timing: Optional[Dict] = None
    record_consumed: bool = False
    trace_store: Optional[str] = None
    trace_mode: str = "auto"
    engine: Optional[str] = None
    engine_options: Dict = field(default_factory=dict)

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")

    def to_dict(self) -> Dict:
        """JSON-serializable form (the remote wire encoding)."""
        data = asdict(self)
        data["predictors"] = list(self.predictors)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (e.g. a decoded
        wire frame).  Unknown keys are rejected, so a worker running a
        newer schema fails loudly instead of silently dropping fields."""
        data = dict(data)
        data["predictors"] = tuple(data.get("predictors") or ())
        return cls(**data)

    def cache_key(self) -> Dict:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "mode": self.mode,
            "predictors": list(self.predictors),
            "harness_options": dict(sorted(self.harness_options.items())),
            "pbs_config": self.pbs_config,
            "timing": self.timing,
            "record_consumed": self.record_consumed,
        }

    def digest(self) -> str:
        return spec_digest(self.cache_key())

    def trace_digest(self) -> str:
        """Digest of the committed-path trace this spec would consume —
        shared by every spec that differs only in predictors, harness
        options or timing configuration."""
        from ..trace import resolved_pbs_config, trace_digest

        return trace_digest(
            self.workload, self.scale, self.seed,
            resolved_pbs_config(self.pbs_config, self.mode == "pbs"),
        )

    def session(self) -> Session:
        from ..core import PBSConfig

        session = Session(self.workload, scale=self.scale, seed=self.seed)
        session.predictors(*self.predictors, **self.harness_options)
        if self.mode == "pbs":
            config = (
                PBSConfig(**self.pbs_config) if self.pbs_config else PBSConfig()
            )
            session.pbs(config)
        if self.timing is not None:
            session.timing(_core_config_from_dict(self.timing))
        if self.record_consumed:
            session.record_consumed()
        if self.trace_store is not None:
            session.trace(self.trace_store, self.trace_mode)
        if self.engine is not None:
            session.engine(self.engine, **self.engine_options)
        return session


#: Sentinel so ``select(engine=None)`` can filter for the legacy direct
#: path explicitly.
_UNFILTERED = object()


class SweepResult:
    """Ordered run results with grid-coordinate lookup."""

    def __init__(self, results: List[RunResult], cache_hits: int = 0,
                 simulated: int = 0, wall_time: float = 0.0,
                 executor: Optional[str] = None,
                 trace_captures: int = 0, trace_hits: int = 0,
                 workers: Optional[Dict] = None,
                 engine_used: Optional[Dict[str, int]] = None,
                 compiled_hits: int = 0, vectorized: int = 0,
                 engine_fallbacks: Optional[List[Dict]] = None,
                 sink_batches: int = 0,
                 sink_fallbacks: Optional[List[Dict]] = None):
        self.results = results
        self.cache_hits = cache_hits
        self.simulated = simulated
        self.wall_time = wall_time
        self.executor = executor
        self.trace_captures = trace_captures
        self.trace_hits = trace_hits
        self.workers = workers
        self.engine_used = engine_used
        self.compiled_hits = compiled_hits
        self.vectorized = vectorized
        self.engine_fallbacks = engine_fallbacks or []
        self.sink_batches = sink_batches
        self.sink_fallbacks = sink_fallbacks or []

    def to_stats(self) -> Dict:
        """Machine-readable run summary (the ``--stats-json`` contract —
        every key is documented in ``docs/api.md``).

        ``executor`` names the backend that ran the pending specs, or
        is ``None`` when everything came from the cache.
        ``trace_captures``/``trace_hits`` count, among the simulated
        specs, full interpretations recorded into a trace store versus
        replays of a stored committed path (both zero without one).
        ``workers`` carries per-worker telemetry summed across the
        sweep's executor batches (``None`` for local backends).
        ``engine_used`` maps execution-tier names to how many simulated
        results each produced (``None`` when every run took the legacy
        direct path); ``compiled_hits`` counts runs served from
        already-generated code; ``vectorized`` counts results produced
        by lockstep seed columns.
        ``engine_fallbacks`` summarizes lockstep columns that fell back
        to per-spec execution — ``{"count", "reasons"}`` where each
        reason records the workload, the exception, and whether it was
        a safe ineligibility or a real engine fault (``None`` when no
        column fell back).
        ``sink_batches`` totals the columnar EventBatches delivered to
        the simulated runs' sink fan-outs; ``sink_fallbacks`` follows
        the ``engine_fallbacks`` shape — ``{"count", "reasons"}``
        where each reason names a run that had to explode batches to
        per-event delivery for legacy consumers (``None`` when every
        batch stayed columnar).
        """
        fallbacks = None
        if self.engine_fallbacks:
            fallbacks = {
                "count": len(self.engine_fallbacks),
                "reasons": [dict(f) for f in self.engine_fallbacks],
            }
        sink_fallbacks = None
        if self.sink_fallbacks:
            sink_fallbacks = {
                "count": len(self.sink_fallbacks),
                "reasons": [dict(f) for f in self.sink_fallbacks],
            }
        return {
            "specs": len(self.results),
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "wall_time": self.wall_time,
            "executor": self.executor,
            "trace_captures": self.trace_captures,
            "trace_hits": self.trace_hits,
            "workers": self.workers,
            "engine_used": self.engine_used,
            "compiled_hits": self.compiled_hits,
            "vectorized": self.vectorized,
            "engine_fallbacks": fallbacks,
            "sink_batches": self.sink_batches,
            "sink_fallbacks": sink_fallbacks,
        }

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def select(self, **filters) -> List[RunResult]:
        """All results whose attributes match ``filters``
        (e.g. ``workload="pi"``, ``mode="pbs"``, ``seed=3``,
        ``engine="vector"`` — ``engine=None`` matches the legacy direct
        path)."""
        mode = filters.pop("mode", None)
        engine = filters.pop("engine", _UNFILTERED)
        matches = []
        for result in self.results:
            if mode is not None and result.pbs != (mode == "pbs"):
                continue
            if engine is not _UNFILTERED and result.engine_used != engine:
                continue
            if all(getattr(result, key) == value
                   for key, value in filters.items()):
                matches.append(result)
        return matches

    def get(self, **filters) -> RunResult:
        """The unique result matching ``filters`` (raises otherwise)."""
        matches = self.select(**filters)
        if len(matches) != 1:
            raise LookupError(
                f"{len(matches)} results match {filters!r}; expected exactly 1"
            )
        return matches[0]


class Sweep:
    """Expand a parameter grid and execute it with caching + parallelism."""

    def __init__(
        self,
        workloads: Optional[Iterable[str]] = None,
        scales: Sequence[float] = (DEFAULT_SCALE,),
        seeds: Sequence[int] = (DEFAULT_SEED,),
        modes: Sequence[str] = MODES,
        predictors: Optional[Sequence[str]] = None,
        harness_options: Optional[Dict] = None,
        pbs_config=None,
        timing=None,
        record_consumed: bool = False,
        cache_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        split_predictors: bool = False,
        engine: Optional[str] = None,
        engine_options: Optional[Dict] = None,
    ):
        self.workloads = list(workloads) if workloads is not None else None
        self.scales = tuple(scales)
        self.seeds = tuple(seeds)
        self.modes = tuple(modes)
        self.predictors = tuple(predictors) if predictors is not None else None
        self.harness_options = dict(harness_options or {})
        if pbs_config is not None and not isinstance(pbs_config, dict):
            pbs_config = asdict(pbs_config)
        self.pbs_config = pbs_config
        if timing is not None:
            if callable(timing):
                timing = timing()
            if not isinstance(timing, dict):
                timing = _core_config_to_dict(timing)
        self.timing = timing
        self.record_consumed = record_consumed
        self.cache_dir = cache_dir
        self.trace_dir = str(trace_dir) if trace_dir else None
        self.split_predictors = split_predictors
        if engine is not None:
            from ..engines import get_engine

            get_engine(engine)  # fail fast on unknown names
        self.engine = engine
        self.engine_options = dict(engine_options or {})

    def specs(self) -> List[RunSpec]:
        """The grid, expanded in deterministic order.

        With ``split_predictors`` each predictor becomes its own grid
        axis (one spec per predictor instead of one spec fanning out to
        all of them) — finer cache granularity, and the natural shape
        for trace reuse: all points of one ``(workload, scale, seed,
        mode)`` group share a single interpretation.
        """
        workloads = (
            self.workloads if self.workloads is not None else workload_names()
        )
        predictors = (
            self.predictors if self.predictors is not None
            else baseline_predictors()
        )
        predictor_sets = (
            [(predictor,) for predictor in predictors]
            if self.split_predictors else [tuple(predictors)]
        )
        return [
            RunSpec(
                workload=workload,
                scale=scale,
                seed=seed,
                mode=mode,
                predictors=predictor_set,
                harness_options=dict(self.harness_options),
                pbs_config=self.pbs_config if mode == "pbs" else None,
                timing=self.timing,
                record_consumed=self.record_consumed,
                engine=self.engine,
                engine_options=dict(self.engine_options),
            )
            for workload in workloads
            for scale in self.scales
            for seed in self.seeds
            for mode in self.modes
            for predictor_set in predictor_sets
        ]

    def run(
        self,
        processes: int = 1,
        executor: Union[str, Executor, None] = None,
        on_result: Optional[Callable[[RunSpec, RunResult], None]] = None,
    ) -> SweepResult:
        """Execute the grid, loading memoized points from the cache.

        ``executor`` selects the execution backend: a registry name
        (``"serial"``, ``"process"``, ``"pool"``, ``"remote"`` — the
        latter reading worker addresses from ``$REPRO_WORKERS``), an
        :class:`Executor`
        instance (kept open for reuse — e.g. one
        :class:`~repro.sim.executors.WorkerPoolExecutor` across many
        sweeps), or ``None`` for the historical default (a throwaway
        process pool, serial when ``processes <= 1``).  ``on_result``
        fires once per grid point — ``on_result(spec, result)`` — as
        each result becomes available, cache hits first.
        """
        started = time.perf_counter()
        specs = self.specs()
        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        results: List[Optional[RunResult]] = [None] * len(specs)

        pending: List[int] = []
        hits: List[int] = []
        for index, spec in enumerate(specs):
            if cache is not None:
                hit = cache.get(spec.digest())
                if hit is not None:
                    results[index] = hit
                    hits.append(index)
                    continue
            pending.append(index)

        total_pending = len(pending)
        engine_fallbacks: List[Dict] = []
        executor_name = None
        trace_captures = trace_hits = 0
        workers: Optional[Dict] = None

        # Cache hits notify first, in spec order, and only now — after
        # every counter above exists — so a callback that raises cannot
        # unwind a half-initialized run, and the callback sequence for
        # any given grid prefix is identical on warm and cold caches
        # (adaptive drivers feed allocator state from this order).
        if on_result is not None:
            for index in hits:
                on_result(specs[index], results[index])

        if pending and self.engine == "vector" and self.trace_dir is None:
            # Lockstep stage: grid columns differing only by seed run as
            # one vectorized call; whatever it cannot take (singletons,
            # ineligible specs, failed columns) stays for the executor.
            pending = self._run_vector_columns(
                specs, pending, results, cache, on_result, engine_fallbacks
            )

        if pending:
            if self.trace_dir is not None:
                for index in pending:
                    specs[index] = replace(
                        specs[index], trace_store=self.trace_dir
                    )
                # Interpret once per trace group, replay everywhere:
                # one leader per distinct trace key runs first (replays
                # if the store is already warm, else interprets and
                # captures); the followers then replay its trace.  Two
                # executor batches, so the barrier holds on parallel
                # and remote backends too.
                leaders: List[int] = []
                followers: List[int] = []
                seen: Dict[str, int] = {}
                for index in pending:
                    key = specs[index].trace_digest()
                    if key in seen:
                        followers.append(index)
                    else:
                        seen[key] = index
                        leaders.append(index)
                batches = [leaders, followers]
            else:
                batches = [pending]

            def completed(batch_index, spec, result):
                if cache is not None:
                    cache.put(spec.digest(), result)
                if on_result is not None:
                    on_result(spec, result)

            backend = create_executor(executor, processes)
            executor_name = backend.name
            try:
                for batch in batches:
                    if not batch:
                        continue
                    todo = [specs[index] for index in batch]
                    fresh = backend.map(todo, on_result=completed)
                    if len(fresh) != len(todo):
                        raise RuntimeError(
                            f"executor {backend.name!r} returned {len(fresh)} "
                            f"results for {len(todo)} specs"
                        )
                    for index, result in zip(batch, fresh):
                        results[index] = result
                    # Per-worker counters reset every map() call; sum
                    # them across the leader/follower batches so the
                    # stats reflect the whole sweep.
                    telemetry = getattr(backend, "telemetry", None)
                    if telemetry:
                        workers = workers or {}
                        for address, counters in telemetry.items():
                            slot = workers.setdefault(address, {})
                            for key, value in counters.items():
                                slot[key] = slot.get(key, 0) + value
            finally:
                if not isinstance(executor, Executor):
                    backend.close()  # throwaway backend owned by this call
            for index in pending:
                origin = getattr(results[index], "trace_origin", None)
                if origin == "capture":
                    trace_captures += 1
                elif origin == "replay":
                    trace_hits += 1

        engine_used: Dict[str, int] = {}
        compiled_hits = 0
        sink_batches = 0
        sink_fallbacks: List[Dict] = []
        for result in results:
            tier_name = getattr(result, "engine_used", None)
            if tier_name:
                engine_used[tier_name] = engine_used.get(tier_name, 0) + 1
            if getattr(result, "compiled_hit", False):
                compiled_hits += 1
            sink_batches += getattr(result, "sink_batches", 0)
            exploded = getattr(result, "sink_fallbacks", 0)
            if exploded:
                sink_fallbacks.append({
                    "workload": result.workload,
                    "seed": result.seed,
                    "mode": "pbs" if result.pbs else "base",
                    "batches": exploded,
                    "consumers": list(
                        getattr(result, "sink_fallback_consumers", None) or []
                    ),
                })

        return SweepResult(
            results, cache_hits=len(specs) - total_pending,
            simulated=total_pending,
            wall_time=time.perf_counter() - started,
            executor=executor_name,
            trace_captures=trace_captures, trace_hits=trace_hits,
            workers=workers,
            engine_used=engine_used or None,
            compiled_hits=compiled_hits,
            vectorized=engine_used.get("vector", 0),
            engine_fallbacks=engine_fallbacks,
            sink_batches=sink_batches,
            sink_fallbacks=sink_fallbacks,
        )

    def _run_vector_columns(
        self,
        specs: List[RunSpec],
        pending: List[int],
        results: List[Optional[RunResult]],
        cache: Optional[ResultCache],
        on_result: Optional[Callable[[RunSpec, RunResult], None]],
        fallbacks: List[Dict],
    ) -> List[int]:
        """Run seed-only columns of pending specs in numpy lockstep.

        Returns the indices the lockstep stage did not take: singleton
        columns, ineligible specs (PBS mode, predictors, timing,
        consumed-value recording, non-vectorizable workloads, no
        numpy), and columns whose lockstep execution failed — those
        fall back to per-spec execution, where the Session applies the
        same engine directive with its own interp fallback.  Every
        fallen-back column is appended to ``fallbacks`` with its
        reason; a fault that is *not* a declared ineligibility is
        re-raised instead of masked when ``REPRO_ENGINE_STRICT=1``.
        """
        from ..engines import create_engine
        from .registry import get_workload

        tier = create_engine("vector", **self.engine_options)
        columns: Dict[str, List[int]] = {}
        for index in pending:
            key = dict(specs[index].cache_key())
            key.pop("seed")
            columns.setdefault(
                json.dumps(key, sort_keys=True), []
            ).append(index)

        remaining: List[int] = []
        for column in columns.values():
            spec = specs[column[0]]
            workload = get_workload(spec.workload)
            eligible = (
                len(column) >= 2
                and spec.mode == "base"
                and not spec.record_consumed
                and spec.timing is None
                and not spec.predictors
                and tier.supports(workload)
            )
            if not eligible:
                remaining.extend(column)
                continue
            try:
                from ..engines.vector import VectorIneligible, execute_lanes

                program = workload.build(spec.scale)
                started = time.perf_counter()
                states, retired = execute_lanes(
                    program, [specs[index].seed for index in column]
                )
                elapsed = (time.perf_counter() - started) / len(column)
            except (VectorIneligible, ImportError) as exc:
                # Declared ineligibility (op outside the envelope, numpy
                # missing): engine choice may change speed, never
                # outcomes, so the column quietly takes the per-spec
                # path instead.
                fallbacks.append({
                    "workload": spec.workload,
                    "specs": len(column),
                    "kind": "ineligible",
                    "reason": str(exc),
                })
                remaining.extend(column)
                continue
            except Exception as exc:
                # Anything else is a real engine fault — the fallback
                # keeps sweeps alive, but it must never silently mask a
                # broken tier.  REPRO_ENGINE_STRICT=1 (set in CI's
                # engine jobs) turns it into a hard failure; otherwise
                # the reason is surfaced through --stats-json.
                fallbacks.append({
                    "workload": spec.workload,
                    "specs": len(column),
                    "kind": "fault",
                    "reason": f"{type(exc).__name__}: {exc}",
                })
                if os.environ.get("REPRO_ENGINE_STRICT") == "1":
                    raise
                remaining.extend(column)
                continue
            for index, state, instructions in zip(column, states, retired):
                result = RunResult(
                    workload=spec.workload,
                    scale=spec.scale,
                    seed=specs[index].seed,
                    pbs=False,
                    outputs=workload.outputs(state),
                    instructions=instructions,
                    wall_time=elapsed,
                )
                result.engine_used = tier.name
                results[index] = result
                if cache is not None:
                    cache.put(specs[index].digest(), result)
                if on_result is not None:
                    on_result(specs[index], result)
        remaining.sort()
        return remaining
