"""The :class:`Sweep` driver: parameter grids over :class:`Session` runs.

A sweep expands ``{workload} x {scale} x {seed} x {mode}`` into
picklable :class:`RunSpec` descriptions, executes them — serially or
across ``multiprocessing`` workers — and memoizes completed runs in an
on-disk :class:`~repro.sim.cache.ResultCache`.  Every run carries its own
seed in its spec, so results are bit-identical regardless of worker count
or execution order::

    from repro.sim import Sweep

    grid = Sweep(workloads=["pi", "dop"], seeds=range(4), cache_dir=".pbs-cache")
    results = grid.run(processes=4)
    print(results.get(workload="pi", seed=0, mode="pbs").predictor("tournament").mpki)
"""

from __future__ import annotations

import multiprocessing
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .cache import ResultCache, spec_digest
from .registry import baseline_predictors, workload_names
from .results import RunResult
from .session import DEFAULT_SCALE, DEFAULT_SEED, Session

MODES = ("base", "pbs")


def _core_config_to_dict(config) -> Dict:
    """Canonical JSON form of a CoreConfig (enum latency keys by name)."""
    data = asdict(config)
    data["latencies"] = {
        op.name: latency for op, latency in config.latencies.items()
    }
    return data


def _core_config_from_dict(data: Dict):
    from ..isa.opcodes import OpClass
    from ..pipeline import CoreConfig

    data = dict(data)
    data["latencies"] = {
        OpClass[name]: latency for name, latency in data["latencies"].items()
    }
    return CoreConfig(**data)


@dataclass
class RunSpec:
    """A picklable, cache-keyable description of one Session run."""

    workload: str
    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    mode: str = "base"
    predictors: Tuple[str, ...] = ()
    harness_options: Dict = field(default_factory=dict)
    pbs_config: Optional[Dict] = None
    timing: Optional[Dict] = None
    record_consumed: bool = False

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")

    def cache_key(self) -> Dict:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "mode": self.mode,
            "predictors": list(self.predictors),
            "harness_options": dict(sorted(self.harness_options.items())),
            "pbs_config": self.pbs_config,
            "timing": self.timing,
            "record_consumed": self.record_consumed,
        }

    def digest(self) -> str:
        return spec_digest(self.cache_key())

    def session(self) -> Session:
        from ..core import PBSConfig

        session = Session(self.workload, scale=self.scale, seed=self.seed)
        session.predictors(*self.predictors, **self.harness_options)
        if self.mode == "pbs":
            config = (
                PBSConfig(**self.pbs_config) if self.pbs_config else PBSConfig()
            )
            session.pbs(config)
        if self.timing is not None:
            session.timing(_core_config_from_dict(self.timing))
        if self.record_consumed:
            session.record_consumed()
        return session


def _execute_spec(spec: RunSpec) -> RunResult:
    """Worker entry point: run one spec (module-level for pickling)."""
    return spec.session().run()


class SweepResult:
    """Ordered run results with grid-coordinate lookup."""

    def __init__(self, results: List[RunResult], cache_hits: int = 0,
                 simulated: int = 0):
        self.results = results
        self.cache_hits = cache_hits
        self.simulated = simulated

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def select(self, **filters) -> List[RunResult]:
        """All results whose attributes match ``filters``
        (e.g. ``workload="pi"``, ``mode="pbs"``, ``seed=3``)."""
        mode = filters.pop("mode", None)
        matches = []
        for result in self.results:
            if mode is not None and result.pbs != (mode == "pbs"):
                continue
            if all(getattr(result, key) == value
                   for key, value in filters.items()):
                matches.append(result)
        return matches

    def get(self, **filters) -> RunResult:
        """The unique result matching ``filters`` (raises otherwise)."""
        matches = self.select(**filters)
        if len(matches) != 1:
            raise LookupError(
                f"{len(matches)} results match {filters!r}; expected exactly 1"
            )
        return matches[0]


class Sweep:
    """Expand a parameter grid and execute it with caching + parallelism."""

    def __init__(
        self,
        workloads: Optional[Iterable[str]] = None,
        scales: Sequence[float] = (DEFAULT_SCALE,),
        seeds: Sequence[int] = (DEFAULT_SEED,),
        modes: Sequence[str] = MODES,
        predictors: Optional[Sequence[str]] = None,
        harness_options: Optional[Dict] = None,
        pbs_config=None,
        timing=None,
        record_consumed: bool = False,
        cache_dir: Optional[str] = None,
    ):
        self.workloads = list(workloads) if workloads is not None else None
        self.scales = tuple(scales)
        self.seeds = tuple(seeds)
        self.modes = tuple(modes)
        self.predictors = tuple(predictors) if predictors is not None else None
        self.harness_options = dict(harness_options or {})
        if pbs_config is not None and not isinstance(pbs_config, dict):
            pbs_config = asdict(pbs_config)
        self.pbs_config = pbs_config
        if timing is not None:
            if callable(timing):
                timing = timing()
            if not isinstance(timing, dict):
                timing = _core_config_to_dict(timing)
        self.timing = timing
        self.record_consumed = record_consumed
        self.cache_dir = cache_dir

    def specs(self) -> List[RunSpec]:
        """The grid, expanded in deterministic order."""
        workloads = (
            self.workloads if self.workloads is not None else workload_names()
        )
        predictors = (
            self.predictors if self.predictors is not None
            else baseline_predictors()
        )
        return [
            RunSpec(
                workload=workload,
                scale=scale,
                seed=seed,
                mode=mode,
                predictors=predictors,
                harness_options=dict(self.harness_options),
                pbs_config=self.pbs_config if mode == "pbs" else None,
                timing=self.timing,
                record_consumed=self.record_consumed,
            )
            for workload in workloads
            for scale in self.scales
            for seed in self.seeds
            for mode in self.modes
        ]

    def run(self, processes: int = 1) -> SweepResult:
        specs = self.specs()
        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        results: List[Optional[RunResult]] = [None] * len(specs)

        pending: List[int] = []
        for index, spec in enumerate(specs):
            if cache is not None:
                hit = cache.get(spec.digest())
                if hit is not None:
                    results[index] = hit
                    continue
            pending.append(index)

        if pending:
            todo = [specs[index] for index in pending]
            if processes > 1 and len(todo) > 1:
                fresh = self._run_parallel(todo, processes)
            else:
                fresh = [_execute_spec(spec) for spec in todo]
            for index, result in zip(pending, fresh):
                results[index] = result
                if cache is not None:
                    cache.put(specs[index].digest(), result)

        return SweepResult(
            results, cache_hits=len(specs) - len(pending),
            simulated=len(pending),
        )

    @staticmethod
    def _run_parallel(specs: List[RunSpec], processes: int) -> List[RunResult]:
        # Prefer fork: workers inherit the interpreter state (registries,
        # sys.path) without re-importing __main__, and start instantly.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with context.Pool(min(processes, len(specs))) as pool:
            return pool.map(_execute_spec, specs)
