"""Autopilot sweeps: deterministic adaptive grid refinement.

:class:`Sweep` executes a static grid; production users want *answers*
— "at which scale does PBS stop winning?" — not grids.
:class:`AdaptiveSweep` layers an adaptive driver on the existing
executor API: a coarse pass over the scale axis, per-cell confidence
intervals (:mod:`repro.stats.confidence`) that stop a cell early once
its interval already decides the registered objective, and a seeded
UCB-style bandit allocator that spends the remaining simulation budget
refining cells nearest the decision boundary.

The whole loop is deterministic given ``(budget, seed)``:

* the allocator RNG is a ``random.Random(seed)`` consulted only at
  round barriers (after ``executor.map`` has returned results in spec
  order), never by wall-clock or arrival order;
* every simulation seed is a pure function of the pull index;
* refinement midpoints are arithmetic, rounded to a fixed precision.

So the emitted :class:`RefinementReport` — rounds, per-cell spend,
frontier estimate — is **byte-identical** across ``serial`` /
``process`` / ``pool`` / ``remote`` / ``http`` executors and joins
``tests/golden/`` rather than routing around it.  See
``docs/adaptive.md`` for the objective contract and budget semantics.

Objectives register like workloads and predictors::

    from repro.sim import AdaptiveSweep, Objective, register_objective

    @register_objective("my-threshold")
    class MyObjective(Objective):
        modes = ("base",)
        def sample(self, results):
            return results["base"].outputs["reward"]

    report = AdaptiveSweep("bandit", objective="pbs-win",
                           budget=96, seed=1).run(executor="serial")
    print(report.frontier[0].estimate)
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..stats.confidence import Interval, mean_interval
from .cache import ResultCache
from .executors import Executor, create_executor
from .registry import Registry, validate_options
from .results import RunResult
from .session import DEFAULT_SEED
from .sweep import RunSpec

#: Decision labels.  ``None`` (undecided) never appears in these.
WIN, LOSS = "win", "loss"

#: Midpoint scales are rounded to this many decimals — purely cosmetic
#: (fixtures stay readable), and deterministic.
SCALE_DECIMALS = 9


# ----------------------------------------------------------------------
# Objectives: what a cell is scored on, registered like workloads.
# ----------------------------------------------------------------------
OBJECTIVES = Registry("objective", catalog="registered objectives")


class Objective:
    """The contract an adaptive sweep optimizes against.

    One *sample* is a scalar drawn from the runs of a single
    ``(workload, scale, seed)`` grid point — one run per mode in
    :attr:`modes`, delivered to :meth:`sample` keyed by mode.  A cell's
    samples across seeds feed a Student-t interval
    (:func:`repro.stats.confidence.mean_interval`); the cell is
    **decided** once that interval excludes :attr:`threshold`:

    * ``direction == "above"``: *win* when ``low > threshold``,
      *loss* when ``high < threshold``;
    * ``direction == "below"``: the polarity flips (*win* when
      ``high < threshold``).

    Subclasses set :attr:`modes`, :attr:`predictors` (attached to every
    spec), and implement :meth:`sample`.  Constructor keyword options
    are validated by :func:`create_objective` exactly like executor and
    engine options.
    """

    #: Registry name (set by :func:`register_objective`).
    name: str = "?"
    #: Modes each sample needs, in spec order.
    modes: Tuple[str, ...] = ("base", "pbs")
    #: Predictor names attached to every spec this objective scores.
    predictors: Tuple[str, ...] = ()
    #: Which side of ``threshold`` counts as a win.
    direction: str = "above"
    threshold: float = 0.0
    confidence: float = 0.95

    def sample(self, results: Dict[str, RunResult]) -> float:
        """One scalar from the mode-keyed runs of a single grid point."""
        raise NotImplementedError

    def decide(self, interval: Interval) -> Optional[str]:
        """``"win"`` / ``"loss"`` when ``interval`` excludes the
        threshold, ``None`` while it still straddles it."""
        if self.direction == "above":
            if interval.low > self.threshold:
                return WIN
            if interval.high < self.threshold:
                return LOSS
        else:
            if interval.high < self.threshold:
                return WIN
            if interval.low > self.threshold:
                return LOSS
        return None

    def lean(self, mean: float) -> str:
        """The point-estimate side of the threshold — the best guess
        for a cell whose interval never excluded it."""
        above = mean > self.threshold
        if self.direction == "above":
            return WIN if above else LOSS
        return LOSS if above else WIN


def register_objective(name: str, *, replace: bool = False):
    """Class decorator registering an :class:`Objective` under ``name``."""

    def decorator(cls):
        cls.name = name
        OBJECTIVES.register(name, cls, replace=replace)
        return cls

    return decorator


def objective_names() -> List[str]:
    """Registered objective names, in registration order."""
    return list(OBJECTIVES)


def get_objective(name: str):
    """The registered :class:`Objective` subclass for ``name``."""
    return OBJECTIVES.get(name)


def create_objective(
    objective: Union[str, Objective], **options
) -> Objective:
    """Resolve a name (plus constructor ``options``) to an instance.

    Unknown options raise ``TypeError`` naming the valid ones, exactly
    like ``create_executor``/``create_engine``.  An :class:`Objective`
    instance passes through untouched.
    """
    if isinstance(objective, Objective):
        return objective
    cls = OBJECTIVES.get(objective)
    validate_options("objective", objective, cls, options)
    instance = cls(**options)
    instance.options = dict(options)
    return instance


@register_objective("pbs-win")
class PBSWinObjective(Objective):
    """Does PBS cut a predictor's MPKI by more than ``threshold``?

    The sample is ``base MPKI - pbs MPKI`` for ``predictor`` at one
    ``(scale, seed)`` point: positive when PBS helps.  With the default
    ``threshold=0.0`` the frontier separates plain win from loss; a
    positive threshold asks where PBS stops being worth at least that
    many mispredicts per kilo-instruction.
    """

    direction = "above"

    def __init__(
        self,
        predictor: str = "tournament",
        threshold: float = 0.0,
        confidence: float = 0.95,
    ):
        self.predictor = predictor
        self.threshold = float(threshold)
        self.confidence = float(confidence)
        self.predictors = (predictor,)

    def sample(self, results: Dict[str, RunResult]) -> float:
        base = results["base"].predictor(self.predictor).mpki
        pbs = results["pbs"].predictor(self.predictor).mpki
        return base - pbs


@register_objective("pbs-accuracy")
class PBSAccuracyObjective(Objective):
    """Is the PBS run's output deviation from base below ``threshold``?

    The sample is the workload's own ``accuracy_error`` between the
    base and pbs outputs of one ``(scale, seed)`` point (PBS permutes
    random-value consumption, so outputs drift at small scales and
    converge as the law of large numbers takes over).  ``win`` means
    the deviation is *below* the tolerance.
    """

    direction = "below"

    def __init__(self, threshold: float = 0.002, confidence: float = 0.95):
        self.threshold = float(threshold)
        self.confidence = float(confidence)

    def sample(self, results: Dict[str, RunResult]) -> float:
        from .registry import get_workload

        base, pbs = results["base"], results["pbs"]
        workload = get_workload(base.workload)
        return workload.accuracy_error(base.outputs, pbs.outputs)


@register_objective("pbs-output")
class PBSOutputObjective(Objective):
    """Does a numeric workload output of the PBS run clear ``threshold``?

    The sample is ``outputs[key]`` of a single pbs-mode run — no base
    run is needed, so one pull costs one spec.  Useful whenever the
    workload itself exposes the quantity of interest (e.g. the bandit
    workload's ``average_reward``, which climbs with scale as PBS trades
    per-decision noise for throughput).
    """

    modes = ("pbs",)

    def __init__(
        self,
        key: str = "average_reward",
        threshold: float = 0.0,
        direction: str = "above",
        confidence: float = 0.95,
    ):
        if direction not in ("above", "below"):
            raise ValueError(
                f"direction must be 'above' or 'below', got {direction!r}"
            )
        self.key = key
        self.threshold = float(threshold)
        self.direction = direction
        self.confidence = float(confidence)

    def sample(self, results: Dict[str, RunResult]) -> float:
        return float(results["pbs"].outputs[self.key])


# ----------------------------------------------------------------------
# The structured report.
# ----------------------------------------------------------------------
@dataclass
class CellReport:
    """One grid cell's full accounting: where its budget went and what
    the interval says."""

    scale: float
    #: ``0`` for coarse-pass cells, else the round that inserted it.
    round_added: int = 0
    #: Samples in pull order (pull ``k`` used simulation seed
    #: ``seed + k``, so ``seeds`` is implied but recorded explicitly).
    samples: List[float] = field(default_factory=list)
    seeds: List[int] = field(default_factory=list)
    #: Specs consumed by this cell (``pulls * len(modes)``).
    spend: int = 0
    mean: Optional[float] = None
    low: Optional[float] = None
    high: Optional[float] = None
    #: ``"win"`` / ``"loss"`` once the interval excluded the threshold.
    decision: Optional[str] = None
    decided_round: Optional[int] = None
    #: Point-estimate side for undecided-but-sampled cells.
    lean: Optional[str] = None

    @property
    def pulls(self) -> int:
        return len(self.samples)

    def classification(self) -> Optional[str]:
        """Decision when decided, lean otherwise, ``None`` unsampled."""
        return self.decision or self.lean


@dataclass
class RoundReport:
    """One allocation round: which cells were pulled, what it cost."""

    index: int
    #: ``[scale, seed]`` pairs, in dispatch order.
    pulls: List[List[float]] = field(default_factory=list)
    #: Midpoint scales refinement inserted at the top of this round.
    added_scales: List[float] = field(default_factory=list)
    #: Cells whose interval first excluded the threshold this round.
    decided_scales: List[float] = field(default_factory=list)
    spend: int = 0


@dataclass
class FrontierSegment:
    """Two adjacent cells classified to opposite sides, and the
    threshold crossing linearly interpolated between their means."""

    low_scale: float
    high_scale: float
    low_classification: str
    high_classification: str
    estimate: float


@dataclass
class RefinementReport:
    """Everything one :meth:`AdaptiveSweep.run` produced.

    JSON round-trips through :meth:`to_dict`/:meth:`from_dict` exactly
    like :class:`RunResult`, and is byte-identical for a fixed
    ``(budget, seed)`` regardless of executor — which is what the
    golden fixtures pin.  Wall time and executor telemetry are
    transient (:meth:`stats`), never serialized.
    """

    workload: str
    objective: str
    objective_options: Dict = field(default_factory=dict)
    modes: Tuple[str, ...] = ("base", "pbs")
    direction: str = "above"
    threshold: float = 0.0
    confidence: float = 0.95
    budget: int = 0
    seed: int = DEFAULT_SEED
    budget_spent: int = 0
    #: Allocation rounds executed after the coarse pass.
    refine_rounds: int = 0
    #: Cells whose interval decided the objective before the budget ran
    #: out — each stopped consuming budget the moment it decided.
    early_stopped: int = 0
    cells: List[CellReport] = field(default_factory=list)
    rounds: List[RoundReport] = field(default_factory=list)
    frontier: List[FrontierSegment] = field(default_factory=list)

    # -- transient bookkeeping (like RunResult.cached): never serialized.
    wall_time: float = 0.0
    executor: Optional[str] = None
    simulated: int = 0
    cache_hits: int = 0
    workers: Optional[Dict] = None

    _TRANSIENTS = ("wall_time", "executor", "simulated", "cache_hits",
                   "workers")

    def cell(self, scale: float) -> CellReport:
        for cell in self.cells:
            if cell.scale == scale:
                return cell
        raise LookupError(f"no cell at scale {scale!r}")

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict:
        data = asdict(self)
        for transient in self._TRANSIENTS:
            data.pop(transient)
        data["modes"] = list(self.modes)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RefinementReport":
        data = dict(data)
        for transient in cls._TRANSIENTS:
            data.pop(transient, None)
        data["modes"] = tuple(data.get("modes") or ())
        data["cells"] = [CellReport(**cell) for cell in data.get("cells") or []]
        data["rounds"] = [
            RoundReport(**entry) for entry in data.get("rounds") or []
        ]
        data["frontier"] = [
            FrontierSegment(**segment) for segment in data.get("frontier") or []
        ]
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        # No key sorting: field order round-trips unchanged (the same
        # convention as RunResult.to_json).
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RefinementReport":
        return cls.from_dict(json.loads(text))

    def stats(self) -> Dict:
        """The ``autopilot --stats-json`` contract (documented in
        ``docs/api.md``): the deterministic counters of the report plus
        the transient execution telemetry."""
        return {
            "workload": self.workload,
            "objective": self.objective,
            "budget": self.budget,
            "budget_spent": self.budget_spent,
            "refine_rounds": self.refine_rounds,
            "early_stopped": self.early_stopped,
            "cells": len(self.cells),
            "frontier": [segment.estimate for segment in self.frontier],
            "specs": self.budget_spent,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "wall_time": self.wall_time,
            "executor": self.executor,
            "workers": self.workers,
        }

    def render(self) -> str:
        """Human-readable summary (the CLI's default output)."""
        lines = [
            f"autopilot {self.workload} · objective {self.objective} "
            f"(threshold {self.threshold:g}, {self.direction}) · "
            f"budget {self.budget_spent}/{self.budget} · "
            f"{self.refine_rounds} refine rounds · "
            f"{self.early_stopped} cells decided early"
        ]
        for cell in self.cells:
            if not cell.samples:
                status = "unsampled"
            elif cell.decision:
                status = (f"{cell.decision:4s} (decided round "
                          f"{cell.decided_round})")
            else:
                status = f"lean {cell.lean}"
            interval = ""
            if cell.mean is not None:
                interval = (f"  mean {cell.mean: .4f} "
                            f"[{cell.low: .4f}, {cell.high: .4f}]")
            lines.append(
                f"  scale {cell.scale:<11g} pulls {cell.pulls:<3d} "
                f"spend {cell.spend:<4d}{interval}  {status}"
            )
        if self.frontier:
            for segment in self.frontier:
                lines.append(
                    f"  frontier: {segment.low_classification} -> "
                    f"{segment.high_classification} between "
                    f"{segment.low_scale:g} and {segment.high_scale:g}, "
                    f"estimate scale ~ {segment.estimate:g}"
                )
        else:
            lines.append("  frontier: not located (objective never flips)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The driver.
# ----------------------------------------------------------------------
class _Cell:
    """Mutable in-flight state behind one :class:`CellReport`."""

    __slots__ = ("scale", "round_added", "samples", "seeds", "spend",
                 "decision", "decided_round")

    def __init__(self, scale: float, round_added: int = 0):
        self.scale = scale
        self.round_added = round_added
        self.samples: List[float] = []
        self.seeds: List[int] = []
        self.spend = 0
        self.decision: Optional[str] = None
        self.decided_round: Optional[int] = None

    def interval(self, confidence: float) -> Optional[Interval]:
        if not self.samples:
            return None
        return mean_interval(self.samples, confidence)


class AdaptiveSweep:
    """Budget-driven adaptive refinement over the scale axis.

    The driver runs in rounds.  Round 0 is the **coarse pass**:
    ``init_pulls`` samples for every cell of ``scales``.  Each later
    round then (1) re-scores every cell and freezes the ones whose
    confidence interval already excludes the objective threshold
    (**early stop** — they receive no further budget), (2) inserts a
    midpoint cell between adjacent cells classified to opposite sides
    (**refinement**, down to ``min_gap``), and (3) spends
    ``batch_pulls`` more pulls chosen by a seeded UCB-style bandit:
    cells whose intervals straddle the threshold most tightly score
    highest, with a ``sqrt(log N / n)`` exploration bonus and one slot
    per round drawn uniformly by the allocator RNG.

    One *pull* costs ``len(objective.modes)`` specs (one simulation per
    mode).  Pulls are only dispatched while they fit: ``budget_spent <=
    budget`` always holds, cache hits included.  All specs of a round
    form a single executor batch — ``map()`` returns them in spec
    order, which is the barrier that keeps the loop deterministic on
    parallel and remote backends.
    """

    def __init__(
        self,
        workload: str,
        objective: Union[str, Objective] = "pbs-win",
        objective_options: Optional[Dict] = None,
        scales: Sequence[float] = (0.01, 0.02, 0.04, 0.08),
        budget: int = 96,
        seed: int = DEFAULT_SEED,
        init_pulls: int = 2,
        min_pulls: int = 2,
        max_pulls: int = 12,
        batch_pulls: int = 4,
        max_rounds: int = 16,
        min_gap: float = 1e-3,
        max_cells: int = 32,
        explore: float = 0.5,
        harness_options: Optional[Dict] = None,
        pbs_config=None,
        cache_dir: Optional[str] = None,
        engine: Optional[str] = None,
        engine_options: Optional[Dict] = None,
    ):
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        if not scales:
            raise ValueError("need at least one coarse scale")
        if init_pulls < 1 or batch_pulls < 1:
            raise ValueError("init_pulls and batch_pulls must be >= 1")
        if min_pulls < 2:
            # A single sample yields a degenerate [mean, mean] interval
            # that "excludes" any threshold it does not equal — deciding
            # a cell on it would make early stop a coin flip.
            raise ValueError("min_pulls must be >= 2")
        self.workload = workload
        self.objective = create_objective(
            objective, **(objective_options or {})
        )
        self.scales = tuple(sorted(set(float(s) for s in scales)))
        self.budget = int(budget)
        self.seed = int(seed)
        self.init_pulls = init_pulls
        self.min_pulls = min_pulls
        self.max_pulls = max(max_pulls, min_pulls)
        self.batch_pulls = batch_pulls
        self.max_rounds = max_rounds
        self.min_gap = float(min_gap)
        self.max_cells = max_cells
        self.explore = float(explore)
        self.harness_options = dict(harness_options or {})
        if pbs_config is not None and not isinstance(pbs_config, dict):
            from dataclasses import asdict as dataclass_asdict

            pbs_config = dataclass_asdict(pbs_config)
        self.pbs_config = pbs_config
        self.cache_dir = cache_dir
        self.engine = engine
        self.engine_options = dict(engine_options or {})

    # -- spec plumbing -------------------------------------------------
    def _pull_specs(self, cell: _Cell, pull_index: int) -> List[RunSpec]:
        sim_seed = self.seed + pull_index
        return [
            RunSpec(
                workload=self.workload,
                scale=cell.scale,
                seed=sim_seed,
                mode=mode,
                predictors=tuple(self.objective.predictors),
                harness_options=dict(self.harness_options),
                pbs_config=self.pbs_config if mode == "pbs" else None,
                engine=self.engine,
                engine_options=dict(self.engine_options),
            )
            for mode in self.objective.modes
        ]

    def _dispatch(
        self,
        pulls: List[Tuple[_Cell, int]],
        backend: Executor,
        cache: Optional[ResultCache],
        report: RefinementReport,
    ) -> None:
        """Run one round's pulls as a single executor batch and feed the
        samples back into their cells, in pull order."""
        specs: List[RunSpec] = []
        owners: List[Tuple[_Cell, int]] = []
        for cell, pull_index in pulls:
            specs.extend(self._pull_specs(cell, pull_index))
            owners.append((cell, pull_index))
        results: List[Optional[RunResult]] = [None] * len(specs)
        missing: List[int] = []
        if cache is not None:
            for index, spec in enumerate(specs):
                hit = cache.get(spec.digest())
                if hit is not None:
                    results[index] = hit
                else:
                    missing.append(index)
        else:
            missing = list(range(len(specs)))
        if missing:
            fresh = backend.map([specs[index] for index in missing])
            if len(fresh) != len(missing):
                raise RuntimeError(
                    f"executor {backend.name!r} returned {len(fresh)} "
                    f"results for {len(missing)} specs"
                )
            for index, result in zip(missing, fresh):
                results[index] = result
                if cache is not None:
                    cache.put(specs[index].digest(), result)
            telemetry = getattr(backend, "telemetry", None)
            if telemetry:
                report.workers = report.workers or {}
                for address, counters in telemetry.items():
                    slot = report.workers.setdefault(address, {})
                    for key, value in counters.items():
                        slot[key] = slot.get(key, 0) + value
        report.simulated += len(missing)
        report.cache_hits += len(specs) - len(missing)
        width = len(self.objective.modes)
        for slot, (cell, pull_index) in enumerate(owners):
            by_mode = {
                mode: results[slot * width + offset]
                for offset, mode in enumerate(self.objective.modes)
            }
            cell.samples.append(float(self.objective.sample(by_mode)))
            cell.seeds.append(self.seed + pull_index)
            cell.spend += width
        report.budget_spent += len(specs)

    # -- the adaptive loop ---------------------------------------------
    def run(
        self,
        executor: Union[str, Executor, None] = None,
        processes: int = 1,
        on_round: Optional[Callable[[RoundReport], None]] = None,
    ) -> RefinementReport:
        """Execute the adaptive loop and return its structured report.

        ``executor``/``processes`` mean exactly what they mean on
        :meth:`Sweep.run`; an :class:`Executor` instance is kept open
        (the caller owns it), a name is instantiated and closed here.
        ``on_round(round_report)`` fires at each completed round
        barrier.
        """
        objective = self.objective
        started = time.perf_counter()
        rng = random.Random(self.seed)
        cells = [_Cell(scale) for scale in self.scales]
        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        report = RefinementReport(
            workload=self.workload,
            objective=objective.name,
            objective_options=dict(getattr(objective, "options", {})),
            modes=tuple(objective.modes),
            direction=objective.direction,
            threshold=objective.threshold,
            confidence=objective.confidence,
            budget=self.budget,
            seed=self.seed,
        )
        width = len(objective.modes)
        backend = create_executor(executor, processes)
        report.executor = backend.name
        try:
            # Round 0: the coarse pass, clipped to whatever fits.
            pulls: List[Tuple[_Cell, int]] = []
            for pull_index in range(self.init_pulls):
                for cell in cells:
                    if (report.budget_spent + (len(pulls) + 1) * width
                            > self.budget):
                        break
                    pulls.append((cell, pull_index))
            coarse = RoundReport(index=0)
            if pulls:
                self._dispatch(pulls, backend, cache, report)
                coarse.pulls = [
                    [cell.scale, self.seed + k] for cell, k in pulls
                ]
                coarse.spend = len(pulls) * width
            report.rounds.append(coarse)
            self._settle(cells, 0, coarse)
            if on_round is not None:
                on_round(coarse)

            for round_index in range(1, self.max_rounds + 1):
                if report.budget_spent + width > self.budget:
                    break  # not even one pull fits
                round_report = RoundReport(index=round_index)
                self._refine(cells, round_index, round_report)
                chosen = self._allocate(cells, rng)
                if not chosen:
                    break  # every cell decided, capped, or unsampled
                budget_room = (self.budget - report.budget_spent) // width
                chosen = chosen[:budget_room]
                if not chosen:
                    break
                pulls = [(cell, len(cell.samples)) for cell in chosen]
                self._dispatch(pulls, backend, cache, report)
                round_report.pulls = [
                    [cell.scale, self.seed + k] for cell, k in pulls
                ]
                round_report.spend = len(pulls) * width
                report.rounds.append(round_report)
                report.refine_rounds += 1
                self._settle(cells, round_index, round_report)
                if on_round is not None:
                    on_round(round_report)
        finally:
            if not isinstance(executor, Executor):
                backend.close()

        report.early_stopped = sum(
            1 for cell in cells if cell.decision is not None
        )
        report.cells = [self._cell_report(cell) for cell in cells]
        report.frontier = self._frontier(report.cells)
        report.wall_time = time.perf_counter() - started
        return report

    # -- round phases --------------------------------------------------
    def _settle(
        self, cells: List[_Cell], round_index: int, round_report: RoundReport
    ) -> None:
        """Freeze every cell whose interval now excludes the threshold.

        Decisions are only taken at round barriers, from ``min_pulls``
        samples or more; a decided cell never receives another pull.
        """
        for cell in cells:
            if cell.decision is not None or len(cell.samples) < self.min_pulls:
                continue
            interval = cell.interval(self.objective.confidence)
            decision = self.objective.decide(interval)
            if decision is not None:
                cell.decision = decision
                cell.decided_round = round_index
                round_report.decided_scales.append(cell.scale)

    def _classify(self, cell: _Cell) -> Optional[str]:
        if cell.decision is not None:
            return cell.decision
        if not cell.samples:
            return None
        return self.objective.lean(
            sum(cell.samples) / len(cell.samples)
        )

    def _refine(
        self, cells: List[_Cell], round_index: int, round_report: RoundReport
    ) -> None:
        """Insert a midpoint cell inside every adjacent win/loss pair
        wider than ``min_gap`` — the grid grows only where the decision
        boundary actually is."""
        insertions: List[Tuple[int, _Cell]] = []
        for index in range(len(cells) - 1):
            if len(cells) + len(insertions) >= self.max_cells:
                break
            low, high = cells[index], cells[index + 1]
            side_low, side_high = self._classify(low), self._classify(high)
            if side_low is None or side_high is None or side_low == side_high:
                continue
            if high.scale - low.scale <= self.min_gap:
                continue
            midpoint = round(
                (low.scale + high.scale) / 2.0, SCALE_DECIMALS
            )
            if midpoint <= low.scale or midpoint >= high.scale:
                continue
            insertions.append((index + 1, _Cell(midpoint, round_index)))
        for offset, (index, cell) in enumerate(insertions):
            cells.insert(index + offset, cell)
            round_report.added_scales.append(cell.scale)

    def _allocate(
        self, cells: List[_Cell], rng: random.Random
    ) -> List[_Cell]:
        """The seeded UCB allocator: pick up to ``batch_pulls`` cells
        for one more pull each.

        Candidates are the undecided cells below the per-cell pull cap.
        Unsampled and under-``min_pulls`` cells outrank everything
        (they cannot decide yet); the rest score ``urgency + explore *
        sqrt(log(N+1)/n)`` where urgency measures how deeply the
        interval still straddles the threshold.  The last slot of every
        round is an exploration pull drawn uniformly by the allocator
        RNG — the only randomness in the loop, consumed in a fixed
        order at the round barrier.
        """
        candidates = [
            cell for cell in cells
            if cell.decision is None and len(cell.samples) < self.max_pulls
        ]
        if not candidates:
            return []
        total = sum(len(cell.samples) for cell in cells)
        scored: List[Tuple[float, float, _Cell]] = []
        for cell in candidates:
            pull_count = len(cell.samples)
            if pull_count < self.min_pulls:
                score = math.inf
            else:
                interval = cell.interval(self.objective.confidence)
                width = interval.high - interval.low
                distance = abs(interval.mean - self.objective.threshold)
                urgency = (
                    width / (width + distance) if width + distance > 0 else 1.0
                )
                score = urgency + self.explore * math.sqrt(
                    math.log(total + 1) / pull_count
                )
            scored.append((score, cell.scale, cell))
        # Descending score, ascending scale on exact ties: deterministic.
        scored.sort(key=lambda entry: (-entry[0], entry[1]))
        chosen = [cell for _, _, cell in scored[: self.batch_pulls]]
        rest = [cell for _, _, cell in scored[self.batch_pulls:]]
        if rest and len(chosen) == self.batch_pulls:
            # One exploration slot: swap the weakest pick for a uniform
            # draw over the leftovers, so a cell the UCB score starves
            # still gets occasional budget.
            chosen[-1] = rng.choice(rest)
        return chosen

    # -- report assembly -----------------------------------------------
    def _cell_report(self, cell: _Cell) -> CellReport:
        interval = cell.interval(self.objective.confidence)
        lean = None
        if cell.decision is None and cell.samples:
            lean = self.objective.lean(interval.mean)
        return CellReport(
            scale=cell.scale,
            round_added=cell.round_added,
            samples=list(cell.samples),
            seeds=list(cell.seeds),
            spend=cell.spend,
            mean=interval.mean if interval else None,
            low=interval.low if interval else None,
            high=interval.high if interval else None,
            decision=cell.decision,
            decided_round=cell.decided_round,
            lean=lean,
        )

    def _frontier(self, cells: List[CellReport]) -> List[FrontierSegment]:
        """Adjacent opposite-side pairs, with the threshold crossing
        linearly interpolated between their means."""
        segments: List[FrontierSegment] = []
        sampled = [cell for cell in cells if cell.samples]
        for low, high in zip(sampled, sampled[1:]):
            side_low, side_high = low.classification(), high.classification()
            if side_low == side_high or side_low is None or side_high is None:
                continue
            threshold = self.objective.threshold
            if high.mean == low.mean:
                estimate = (low.scale + high.scale) / 2.0
            else:
                fraction = (threshold - low.mean) / (high.mean - low.mean)
                fraction = min(1.0, max(0.0, fraction))
                estimate = low.scale + fraction * (high.scale - low.scale)
            segments.append(FrontierSegment(
                low_scale=low.scale,
                high_scale=high.scale,
                low_classification=side_low,
                high_classification=side_high,
                estimate=round(estimate, SCALE_DECIMALS),
            ))
        return segments
