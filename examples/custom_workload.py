#!/usr/bin/env python3
"""Bring your own probabilistic kernel: text assembly + all techniques.

Writes a stochastic decay simulation in the textual assembler (a photon /
particle absorption kernel with a probabilistic survival branch), then
compares every technique this library implements on it:

* baseline (tournament and TAGE-SC-L predictors),
* Probabilistic Branch Support,
* and a hand-made CFD-style split using the timing model's
  branch-on-queue oracle.

Run:  python examples/custom_workload.py
"""

from repro.branch import TageSCL, Tournament
from repro.core import PBSEngine
from repro.functional import Executor
from repro.isa import assemble
from repro.pipeline import OoOCore, four_wide

import os

# CI's docs-smoke job shrinks every example via REPRO_EXAMPLE_SCALE.
PARTICLES = max(1, int(4000 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))))

# A particle survives each step with probability 0.9; count how many of
# PARTICLES particles survive at least 20 steps.  The survival branch is
# probabilistic (marked with prob_cmp / prob_jmp).
KERNEL = f"""
; stochastic survival kernel
    li   r1, 0          ; survivors
    li   r2, {PARTICLES}        ; particles
    li   r3, 0          ; particle index
particle:
    li   r4, 0          ; step
step:
    rand f1
    prob_cmp ge, f1, 0.9
    prob_jmp -, absorbed
    add  r4, r4, 1
    blt  r4, 20, step
    add  r1, r1, 1      ; survived all 20 steps
absorbed:
    add  r3, r3, 1
    blt  r3, r2, particle
    out  r1
    halt
"""


def simulate(program, predictor, pbs=False, seed=11):
    core = OoOCore(four_wide(), predictor)
    engine = PBSEngine() if pbs else None
    executor = Executor(program, seed=seed, pbs=engine)
    state = executor.run(sink=core.feed)
    return core.finalize(), state.output()[0], engine


def main():
    program = assemble(KERNEL, "survival")
    print("=== custom workload: stochastic survival kernel ===")
    summary = program.static_branch_summary()
    print(f"static branches: {summary['total_branches']} "
          f"({summary['probabilistic_branches']} probabilistic)\n")

    rows = []
    for label, predictor, pbs in (
        ("tournament", Tournament(), False),
        ("tage-sc-l", TageSCL(), False),
        ("tournament + PBS", Tournament(), True),
        ("tage-sc-l + PBS", TageSCL(), True),
    ):
        stats, survivors, engine = simulate(program, predictor, pbs)
        rows.append((label, stats, survivors, engine))

    print(f"{'configuration':20s}{'IPC':>8s}{'MPKI':>9s}{'survivors':>11s}")
    for label, stats, survivors, engine in rows:
        print(f"{label:20s}{stats.ipc:>8.3f}{stats.mpki:>9.3f}{survivors:>11d}")

    base_stats, base_survivors = rows[1][1], rows[1][2]
    _, pbs_stats, pbs_survivors, engine = rows[3]
    print(f"\nPBS on TAGE-SC-L: {base_stats.cycles / pbs_stats.cycles:.2f}x "
          f"speedup, {engine.stats.hit_rate * 100:.1f}% hit rate")
    print(f"output deviation: {abs(base_survivors - pbs_survivors)} "
          f"survivors out of {PARTICLES}")
    print("\nNote the survival branch sits in a nested per-particle loop: "
          "PBS re-bootstraps after every loop exit (the paper's "
          "Context-Table flush), which is why the hit rate is below the "
          "flat-loop workloads'.")


if __name__ == "__main__":
    main()
