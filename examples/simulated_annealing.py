#!/usr/bin/env python3
"""The paper's cautionary case (§IV): simulated annealing.

Simulated annealing compares a random value against a *slowly decreasing*
temperature — which violates PBS's correctness condition that the
comparison partner stay constant within a context.  The hardware's
Const-Val field catches the change at runtime and demotes the branch to a
regular branch.

This example shows all three ways the system can handle it:

1. **default hardware policy** — Const-Val mismatch detected, branch
   blacklisted for the rest of the context (safe, no PBS benefit);
2. **re-allocate policy** (``blacklist_on_const_mismatch=False``) — PBS
   keeps re-bootstrapping with the new constant, useful when the
   temperature changes *rarely* (e.g. stepwise cooling schedules);
3. **the compiler refuses to mark it** — the §V-B static analysis sees
   the threshold written inside the loop and never converts the branch.

Run:  python examples/simulated_annealing.py
"""

import os

from repro.compiler import mark_probabilistic_branches
from repro.core import PBSConfig, PBSEngine
from repro.functional import Executor
from repro.isa import F, ProgramBuilder, R

# CI's docs-smoke job shrinks every example via REPRO_EXAMPLE_SCALE.
_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
STEPS = max(2, int(6000 * _SCALE))
COOLING_EVERY = max(1, int(1000 * _SCALE))


def build_annealing(steps=STEPS, cooling_every=COOLING_EVERY, marked=True):
    """Accept/reject loop with a stepwise-cooled acceptance threshold.

    Every ``cooling_every`` steps the temperature (the comparison
    constant) is multiplied by 0.8 — a context-internal change that trips
    the Const-Val check.
    """
    b = ProgramBuilder("annealing")
    accepted, i, phase = R(1), R(2), R(3)
    u, temperature = F(1), F(2)

    b.li(accepted, 0)
    b.li(i, 0)
    b.li(phase, 0)
    b.fli(temperature, 0.9)
    b.label("loop")
    b.rand(u)
    if marked:
        b.prob_cmp("ge", u, temperature)
        b.prob_jmp(None, "reject")
    else:
        b.cmp("ge", u, temperature)
        b.jt("reject")
    b.add(accepted, accepted, 1)
    b.label("reject")
    # Stepwise cooling schedule.
    b.add(phase, phase, 1)
    b.blt(phase, cooling_every, "no_cool")
    b.li(phase, 0)
    b.fmul(temperature, temperature, 0.8)
    b.label("no_cool")
    b.add(i, i, 1)
    b.blt(i, steps, "loop")
    b.out(accepted)
    b.halt()
    return b.build()


def run_policy(blacklist: bool):
    program = build_annealing()
    engine = PBSEngine(PBSConfig(blacklist_on_const_mismatch=blacklist))
    state = Executor(program, seed=17, pbs=engine).run()
    return engine.stats, state.output()[0]


def main():
    print("=== simulated annealing: the Const-Val safety net ===\n")

    baseline = Executor(build_annealing(), seed=17).run().output()[0]
    print(f"baseline acceptances: {baseline} / {STEPS}\n")

    for blacklist, label in ((True, "blacklist (default)"),
                             (False, "re-allocate")):
        stats, accepted = run_policy(blacklist)
        print(f"policy: {label}")
        print(f"  const-val mismatches : {stats.const_mismatches}")
        print(f"  PBS hits             : {stats.hits} "
              f"({stats.hit_rate * 100:.1f}%)")
        print(f"  regular fallbacks    : {stats.fallbacks}")
        print(f"  acceptances          : {accepted} "
              f"(deviation {abs(accepted - baseline)})\n")

    unmarked = build_annealing(marked=False)
    _, report = mark_probabilistic_branches(unmarked)
    print("compiler verdict on the unmarked kernel:")
    print(report.render())
    print("\nThe static analysis refuses the acceptance branch because the"
          "\ntemperature is written inside the loop — exactly the offline"
          "\nanalysis the paper recommends before applying PBS here (§IV).")


if __name__ == "__main__":
    main()
