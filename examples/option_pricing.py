#!/usr/bin/env python3
"""Option pricing under PBS: the paper's financial workloads end to end.

Prices a digital option (DOP) and computes option Greeks by Monte Carlo —
the two financial benchmarks from the paper — on the simulated 4-wide
out-of-order core, with and without Probabilistic Branch Support, and
reports both the performance gain and the pricing accuracy impact.

Greeks is the paper's canonical *Category-2* workload: the probabilistic
value (the simulated terminal price) is consumed by code after the branch,
so PBS must swap register values, not just steer fetch.

Run:  python examples/option_pricing.py
"""

import os

from repro.branch import TageSCL, Tournament
from repro.core import PBSEngine
from repro.pipeline import OoOCore, four_wide
from repro.workloads import get_workload

# CI's docs-smoke job shrinks every example via REPRO_EXAMPLE_SCALE.
SCALE = 0.5 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
SEED = 7


def evaluate(workload_name: str):
    workload = get_workload(workload_name)

    baseline_core = OoOCore(four_wide(), TageSCL())
    baseline = workload.run(scale=SCALE, seed=SEED, sink=baseline_core.feed)
    baseline_stats = baseline_core.finalize()

    pbs_core = OoOCore(four_wide(), TageSCL())
    engine = PBSEngine()
    with_pbs = workload.run(
        scale=SCALE, seed=SEED, pbs=engine, sink=pbs_core.feed
    )
    pbs_stats = pbs_core.finalize()

    return baseline, baseline_stats, with_pbs, pbs_stats, engine


def report(workload_name: str, interesting_outputs):
    baseline, base_stats, with_pbs, pbs_stats, engine = evaluate(workload_name)
    workload = baseline.workload
    print(f"--- {workload_name} ({workload.description}) ---")
    print(f"  category: {workload.paper.category}   "
          f"probabilistic branches: {workload.paper.prob_branches}")
    print(f"  IPC   : {base_stats.ipc:.3f} -> {pbs_stats.ipc:.3f} "
          f"({100 * (pbs_stats.ipc / base_stats.ipc - 1):+.1f}%)")
    print(f"  MPKI  : {base_stats.mpki:.3f} -> {pbs_stats.mpki:.3f}")
    print(f"  PBS   : {engine.stats.hit_rate * 100:.1f}% steady-state hits")
    for key in interesting_outputs:
        print(f"  {key:12s}: {baseline.outputs[key]:.6f} (baseline)  "
              f"{with_pbs.outputs[key]:.6f} (PBS)")
    error = workload.accuracy_error(baseline.outputs, with_pbs.outputs)
    print(f"  pricing error under PBS: {100 * error:.4f}%\n")


def main():
    print("=== Monte Carlo option pricing with Probabilistic Branch "
          "Support ===\n")
    report("dop", ["call_price", "put_price"])
    report("greeks", ["price", "delta", "gamma"])

    # The return-on-investment argument of Figure 7: a 1 KB tournament
    # predictor + 193 bytes of PBS beats the 8 KB TAGE-SC-L alone.
    workload = get_workload("greeks")
    tournament_pbs_core = OoOCore(four_wide(), Tournament())
    workload.run(
        scale=SCALE, seed=SEED, pbs=PBSEngine(),
        sink=tournament_pbs_core.feed,
    )
    tagescl_core = OoOCore(four_wide(), TageSCL())
    workload.run(scale=SCALE, seed=SEED, sink=tagescl_core.feed)
    print("return on investment (greeks):")
    print(f"  1 KB tournament + 193 B PBS : "
          f"IPC {tournament_pbs_core.finalize().ipc:.3f}")
    print(f"  8 KB TAGE-SC-L, no PBS      : "
          f"IPC {tagescl_core.finalize().ipc:.3f}")


if __name__ == "__main__":
    main()
