#!/usr/bin/env python3
"""Reinforcement learning under PBS: the epsilon-greedy bandit.

The paper's learning workload (Section II-A3): an epsilon-greedy agent
pulls one of eight Bernoulli arms per step; the explore/exploit decision
``rand() < epsilon`` is the marked probabilistic branch.  This example
shows

* the agent still learns (reward/regret) when PBS replays decisions,
* the MPKI/IPC effect on both baseline predictors, and
* the PBS engine's internal behaviour (bootstraps, hits, context flushes).

Run:  python examples/bandit_learning.py
"""

import os

from repro.branch import TageSCL, Tournament
from repro.core import PBSConfig, PBSEngine
from repro.pipeline import OoOCore, four_wide
from repro.workloads import get_workload
from repro.workloads.bandit import ARM_PROBS, BEST_PROB

# CI's docs-smoke job shrinks every example via REPRO_EXAMPLE_SCALE.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
SEED = 3


def main():
    workload = get_workload("bandit")
    print("=== Epsilon-greedy bandit with Probabilistic Branch Support ===")
    print(f"arms: {ARM_PROBS} (best: {BEST_PROB})\n")

    baseline = workload.run(scale=SCALE, seed=SEED)
    engine = PBSEngine(PBSConfig())
    with_pbs = workload.run(scale=SCALE, seed=SEED, pbs=engine)

    print("learning outcome:")
    for key in ("average_reward", "regret"):
        print(f"  {key:15s}: {baseline.outputs[key]:10.3f} (baseline)  "
              f"{with_pbs.outputs[key]:10.3f} (PBS)")
    error = workload.accuracy_error(baseline.outputs, with_pbs.outputs)
    print(f"  reward deviation under PBS: {100 * error:.3f}%\n")

    print("performance (4-wide core):")
    for label, predictor_factory in (
        ("tournament-1kb", Tournament),
        ("tage-sc-l-8kb", TageSCL),
    ):
        base_core = OoOCore(four_wide(), predictor_factory())
        workload.run(scale=SCALE, seed=SEED, sink=base_core.feed)
        base_stats = base_core.finalize()

        pbs_core = OoOCore(four_wide(), predictor_factory())
        workload.run(scale=SCALE, seed=SEED, pbs=PBSEngine(), sink=pbs_core.feed)
        pbs_stats = pbs_core.finalize()

        print(f"  {label:15s} IPC {base_stats.ipc:.3f} -> {pbs_stats.ipc:.3f}"
              f"   MPKI {base_stats.mpki:.3f} -> {pbs_stats.mpki:.3f}")

    print("\nPBS engine internals:")
    for key, value in engine.stats.as_dict().items():
        if value:
            print(f"  {key:20s}: {value}")


if __name__ == "__main__":
    main()
