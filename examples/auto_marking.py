#!/usr/bin/env python3
"""Compiler support (paper §V-B): marking probabilistic branches
automatically.

The paper expects either the programmer or the compiler to mark
probabilistic branches.  This example feeds an *unmarked* Monte Carlo
kernel through the library's auto-marking pass, which

1. taints every value derived from a RAND instruction (dataflow fixpoint),
2. finds compare/branch pairs controlled by tainted values,
3. statically checks the §IV safety rule (the comparison partner must be
   loop-invariant), rejecting e.g. simulated-annealing-style decaying
   thresholds,
4. rewrites eligible branches into PROB_CMP/PROB_JMP.

Run:  python examples/auto_marking.py
"""

import os

from repro.branch import TageSCL
from repro.compiler import mark_probabilistic_branches
from repro.core import PBSEngine
from repro.functional import Executor
from repro.isa import assemble, disassemble
from repro.pipeline import OoOCore, four_wide

# CI's docs-smoke job shrinks every example via REPRO_EXAMPLE_SCALE.
ITERATIONS = max(1, int(8000 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))))

UNMARKED = f"""
; monte carlo kernel, written WITHOUT probabilistic instructions
    li   r1, 0          ; hits
    li   r2, {ITERATIONS}       ; iterations
    li   r3, 0          ; i
    fli  f4, 0.6        ; a loop-invariant threshold
loop:
    rand f1
    rand f2
    fmul f3, f1, f2     ; derived probabilistic value
    cmp  lt, f3, f4     ; candidate 1: tainted vs loop-invariant
    jt   hit
    jmp  next
hit:
    add  r1, r1, 1
next:
    add  r3, r3, 1
    blt  r3, r2, loop   ; clean loop branch: must NOT be converted
    out  r1
    halt
"""


def measure(program, pbs=False, seed=13):
    core = OoOCore(four_wide(), TageSCL())
    executor = Executor(program, seed=seed, pbs=PBSEngine() if pbs else None)
    state = executor.run(sink=core.feed)
    return core.finalize(), state.output()[0]


def main():
    program = assemble(UNMARKED, "unmarked")
    converted, report = mark_probabilistic_branches(program)

    print("=== automatic probabilistic-branch marking ===\n")
    print(report.render())
    print("\nconverted kernel (excerpt):")
    for line in disassemble(converted).splitlines():
        if "prob_" in line:
            print(f"  {line.strip()}")

    base_stats, base_hits = measure(program)
    pbs_stats, pbs_hits = measure(converted, pbs=True)
    print(f"\nunmarked + TAGE-SC-L : IPC {base_stats.ipc:.3f}, "
          f"MPKI {base_stats.mpki:.3f}")
    print(f"auto-marked + PBS    : IPC {pbs_stats.ipc:.3f}, "
          f"MPKI {pbs_stats.mpki:.3f}")
    print(f"outputs: {base_hits} vs {pbs_hits} hits of {ITERATIONS}")

    stack_base = base_stats.cpi_stack(width=4)
    stack_pbs = pbs_stats.cpi_stack(width=4)
    print("\nCPI stacks (cycles per instruction):")
    print(f"  {'component':10s}{'unmarked':>10s}{'auto+PBS':>10s}")
    for key in ("base", "branch", "other"):
        print(f"  {key:10s}{stack_base[key]:>10.3f}{stack_pbs[key]:>10.3f}")


if __name__ == "__main__":
    main()
