#!/usr/bin/env python3
"""Quickstart: mark a probabilistic branch and watch PBS eliminate its
mispredictions.

Builds the paper's motivating example — a Monte Carlo loop whose branch
direction depends on freshly drawn random values — in the repro ISA, runs
it through the out-of-order timing model with the 8 KB TAGE-SC-L
predictor, and compares the baseline against Probabilistic Branch Support.

Run:  python examples/quickstart.py
"""

from repro.branch import TageSCL
from repro.core import PBSEngine, hardware_cost
from repro.functional import Executor
from repro.isa import F, ProgramBuilder, R
from repro.pipeline import OoOCore, four_wide


def build_program(iterations: int = 20_000):
    """count how often rand() falls below a threshold (Category-1)."""
    b = ProgramBuilder("quickstart")
    taken_count, i = R(1), R(2)
    value = F(1)

    b.li(taken_count, 0)
    b.li(i, 0)
    b.label("loop")
    b.rand(value)
    # The two instructions the paper adds to the ISA: a probabilistic
    # compare-and-jump pair.  On hardware without PBS they behave exactly
    # like cmp + jcc (backward compatible).
    b.prob_cmp("ge", value, 0.3)
    b.prob_jmp(None, "skip")
    b.add(taken_count, taken_count, 1)
    b.label("skip")
    b.add(i, i, 1)
    b.blt(i, iterations, "loop")
    b.out(taken_count)
    b.halt()
    return b.build()


def simulate(program, pbs_engine=None, seed=42):
    core = OoOCore(four_wide(), TageSCL())
    executor = Executor(program, seed=seed, pbs=pbs_engine)
    state = executor.run(sink=core.feed)
    return core.finalize(), state.output()[0]


def main():
    program = build_program()

    baseline, base_count = simulate(program)
    engine = PBSEngine()
    with_pbs, pbs_count = simulate(program, pbs_engine=engine)

    print("=== Probabilistic Branch Support quickstart ===\n")
    print(f"{'':22s}{'baseline':>12s}{'with PBS':>12s}")
    print(f"{'IPC':22s}{baseline.ipc:>12.3f}{with_pbs.ipc:>12.3f}")
    print(f"{'MPKI':22s}{baseline.mpki:>12.3f}{with_pbs.mpki:>12.3f}")
    print(f"{'branch mispredicts':22s}"
          f"{baseline.branches.mispredicts:>12d}"
          f"{with_pbs.branches.mispredicts:>12d}")
    print(f"{'PBS steady-state hits':22s}{'-':>12s}"
          f"{with_pbs.branches.pbs_hits:>12d}")
    speedup = baseline.cycles / with_pbs.cycles
    print(f"\nspeedup: {speedup:.2f}x "
          f"(mispredict penalty eliminated for the probabilistic branch)")
    print(f"algorithm output: {base_count} vs {pbs_count} "
          f"({abs(base_count - pbs_count)} off out of 20000 — the bootstrap "
          "replay effect, Section IV of the paper)")
    print(f"\nPBS engine: {engine.stats.hits} hits, "
          f"{engine.stats.bootstraps} bootstrap executions")
    print("\nPBS hardware budget (paper Section V-C2):")
    print(hardware_cost().render())


if __name__ == "__main__":
    main()
