#!/usr/bin/env python3
"""Quickstart: mark a probabilistic branch and watch PBS eliminate its
mispredictions — through the unified `repro.sim` API.

Builds the paper's motivating example — a Monte Carlo loop whose branch
direction depends on freshly drawn random values — registers it as a
workload plugin, and drives it with a `Session`: the benchmark is
interpreted once per configuration, fanning the trace out to the 8 KB
TAGE-SC-L timing core, with and without Probabilistic Branch Support.
It then captures the committed path into a trace store, replays it for
a different predictor with no re-interpretation, and runs a trace-native
analysis pass over the stored stream.

Run:  python examples/quickstart.py

Where to next: docs/index.md maps the documentation suite — the
Session/Sweep API reference (docs/api.md), the trace layer this script
captures into (docs/traces.md), the analysis toolkit it finishes with
(docs/analysis.md), and distributed execution (docs/distributed.md).
"""

import os

from repro.core import hardware_cost
from repro.isa import F, ProgramBuilder, R
from repro.sim import Session, register_workload
from repro.workloads import PaperFacts, Workload

ITERATIONS = 20_000

#: CI's docs-smoke job runs every example at a tiny scale; humans get
#: the full-size run by default.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


@register_workload
class QuickstartWorkload(Workload):
    """Count how often rand() falls below a threshold (Category-1)."""

    name = "quickstart"
    description = "threshold counting loop from the paper's Section II"
    paper = PaperFacts(1, 3, 1, "n/a (tutorial kernel)")

    def build(self, scale: float = 1.0):
        iterations = max(1, int(ITERATIONS * scale))
        b = ProgramBuilder("quickstart")
        taken_count, i = R(1), R(2)
        value = F(1)

        b.li(taken_count, 0)
        b.li(i, 0)
        b.label("loop")
        b.rand(value)
        # The two instructions the paper adds to the ISA: a probabilistic
        # compare-and-jump pair.  On hardware without PBS they behave
        # exactly like cmp + jcc (backward compatible).
        b.prob_cmp("ge", value, 0.3)
        b.prob_jmp(None, "skip")
        b.add(taken_count, taken_count, 1)
        b.label("skip")
        b.add(i, i, 1)
        b.blt(i, iterations, "loop")
        b.out(taken_count)
        b.halt()
        return b.build()

    def reference(self, scale: float = 1.0, seed: int = 0):
        from repro.functional.rng import Drand48

        rng = Drand48(seed)
        iterations = max(1, int(ITERATIONS * scale))
        taken = sum(1 for _ in range(iterations) if not (rng.next() >= 0.3))
        return {"taken_count": float(taken)}

    def outputs(self, state):
        return {"taken_count": float(state.output()[0])}

    def accuracy_error(self, baseline, candidate):
        expected = baseline["taken_count"]
        if expected == 0:
            return abs(candidate["taken_count"])
        return abs(candidate["taken_count"] - expected) / expected


def main():
    iterations = max(1, int(ITERATIONS * SCALE))

    def timed(pbs: bool):
        session = Session("quickstart", scale=SCALE, seed=42)
        session.predictors("tage-sc-l").timing()
        if pbs:
            session.pbs()
        return session.run()

    baseline = timed(pbs=False)
    with_pbs = timed(pbs=True)
    base_core = baseline.core("tage-sc-l")
    pbs_core = with_pbs.core("tage-sc-l")

    print("=== Probabilistic Branch Support quickstart (repro.sim) ===\n")
    print(f"{'':22s}{'baseline':>12s}{'with PBS':>12s}")
    print(f"{'IPC':22s}{base_core.ipc:>12.3f}{pbs_core.ipc:>12.3f}")
    print(f"{'MPKI':22s}{base_core.mpki:>12.3f}{pbs_core.mpki:>12.3f}")
    print(f"{'branch mispredicts':22s}"
          f"{base_core.branches.mispredicts:>12d}"
          f"{pbs_core.branches.mispredicts:>12d}")
    print(f"{'PBS steady-state hits':22s}{'-':>12s}"
          f"{pbs_core.branches.pbs_hits:>12d}")
    speedup = base_core.cycles / pbs_core.cycles
    print(f"\nspeedup: {speedup:.2f}x "
          f"(mispredict penalty eliminated for the probabilistic branch)")
    base_count = int(baseline.outputs["taken_count"])
    pbs_count = int(with_pbs.outputs["taken_count"])
    print(f"algorithm output: {base_count} vs {pbs_count} "
          f"({abs(base_count - pbs_count)} off out of {iterations} — the "
          "bootstrap replay effect, Section IV of the paper)")
    print(f"\nPBS engine: {with_pbs.pbs_stats.hits} hits, "
          f"{with_pbs.pbs_stats.bootstraps} bootstrap executions")
    print("\nstructured result (RunResult.to_json):")
    print("  " + with_pbs.to_json()[:72] + "...")

    # --- capture once, replay everywhere (the repro.trace layer) -----
    # The committed path depends only on (workload, scale, seed, PBS
    # config).  Attaching a trace store records it on the first run;
    # every later run that differs only in predictors or core config
    # replays the stored events instead of re-interpreting — with a
    # bit-identical RunResult.  Full tour: docs/traces.md.
    import tempfile

    with tempfile.TemporaryDirectory() as trace_store:
        captured = (
            Session("quickstart", scale=SCALE, seed=42)
            .predictors("tage-sc-l")
            .trace(trace_store)
            .run()
        )
        replayed = (
            Session("quickstart", scale=SCALE, seed=42)
            .predictors("tournament")      # different predictor, same trace
            .trace(trace_store)
            .run()
        )
        print(f"\ntrace layer: first run {captured.trace_origin}d the "
              f"committed path ({captured.instructions} instructions), "
              f"second run {replayed.trace_origin}ed it "
              f"in {replayed.wall_time:.3f}s with no interpreter")

        # --- study the stored stream itself (repro.analysis) ---------
        # A stored trace is a corpus: analysis passes replay it with no
        # Session at all.  The entropy study shows why PBS works — the
        # probabilistic branch carries ~0.75 bits/execution that no
        # predictor can learn; the loop branch carries ~0.  On the
        # command line: `pbs-experiments analyze`.  Tour: docs/analysis.md.
        from repro.analysis import analyze_store

        report = analyze_store(trace_store, passes=["branch-entropy"])[0]
        print("\nbranch entropy from the stored trace (docs/analysis.md):")
        for row in report["analyses"]["branch-entropy"]["per_branch"]:
            kind = "probabilistic" if row["probabilistic"] else "regular"
            print(f"  pc={row['pc']:<4d} {kind:13s} p(taken)={row['taken_rate']:.3f}"
                  f"  {row['entropy_bits']:.3f} bits/execution")

    print("\nPBS hardware budget (paper Section V-C2):")
    print(hardware_cost().render())


if __name__ == "__main__":
    main()
