"""Regenerates Figure 1 and checks its qualitative claim."""

from conftest import run_once

from repro.experiments import figure1


def test_bench_figure1(benchmark, bench_scale):
    result = run_once(benchmark, lambda: figure1.run(scale=bench_scale))
    print()
    print(result.render())
    # Acceptance: probabilistic branches cause a disproportionate share
    # of mispredictions on every benchmark.
    for row in result.rows:
        assert row["tournament_miss_share_%"] >= row["prob_branch_share_%"]
