"""Regenerates Table II (benchmark characteristics)."""

from conftest import run_once

from repro.experiments import table2


def test_bench_table2(benchmark, bench_scale):
    result = run_once(benchmark, lambda: table2.run(scale=bench_scale))
    print()
    print(result.render())
    assert len(result.rows) == 8
    # Our static probabilistic branch counts match the paper exactly.
    for row in result.rows:
        ours = row["prob/total (ours)"].split("/")[0]
        paper = row["prob/total (paper)"].split("/")[0]
        assert ours == paper
