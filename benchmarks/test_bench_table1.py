"""Regenerates Table I (applicability of predication and CFD)."""

from conftest import run_once

from repro.experiments import table1


def test_bench_table1(benchmark):
    result = run_once(benchmark, lambda: table1.run(verify=True))
    print()
    print(result.render())
    applicable_predication = sum(
        1 for row in result.rows if row["predication"].startswith("yes")
    )
    applicable_cfd = sum(
        1 for row in result.rows if row["cfd"].startswith("yes")
    )
    # Paper: predication applies to 3 of 8, CFD to 5 of 8, PBS to all.
    assert applicable_predication == 3
    assert applicable_cfd == 5
    assert all(row["pbs"] == "yes" for row in result.rows)
    assert not any("DIVERGES" in str(row) for row in result.rows)
