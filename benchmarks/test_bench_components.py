"""Microbenchmarks of the simulation substrates themselves.

These measure the library's own throughput (instructions simulated per
second, branch predictions per second, PBS transactions per second) so
performance regressions in the simulator are visible.
"""

import random

from repro.branch import TageSCL, Tournament
from repro.core import PBSEngine
from repro.functional import Executor
from repro.functional.executor import ProbGroup
from repro.isa import ProgramBuilder, R
from repro.workloads import get_workload


def build_alu_loop(iterations=20_000):
    b = ProgramBuilder("alu")
    b.li(R(1), 0)
    b.label("top")
    b.add(R(2), R(1), 7)
    b.mul(R(3), R(2), 3)
    b.xor(R(4), R(3), R(2))
    b.add(R(1), R(1), 1)
    b.blt(R(1), iterations, "top")
    b.halt()
    return b.build()


class CountingSink:
    """Columnar event counter: the cheapest consumer that still takes
    the batched pipeline (the with-sink benchmarks measure transport,
    not consumer work)."""

    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def __call__(self, event):
        self.count += 1

    def consume_batch(self, batch):
        self.count += len(batch.pcs)


# Interpreter-loop optimisation history (this machine, PYTHONHASHSEED=0):
# pre-decoding operand accessors + hoisting enum/global lookups into
# locals (PR 4) took test_bench_functional_executor from 157.9ms to
# 23.5ms mean (~0.63M -> ~4.3M instr/s, 6.7x) and
# test_bench_executor_with_sink from 126.8ms to 48.4ms (2.6x).
def test_bench_functional_executor(benchmark):
    program = build_alu_loop()

    def run():
        executor = Executor(program, seed=1)
        executor.run()
        return executor.retired

    retired = benchmark(run)
    assert retired > 100_000


# Columnar sink history (this machine, PYTHONHASHSEED=0): batching the
# event pipeline (EventBatch chunks from the interpreter, per-block
# column extends from the compiled tier, consume_batch on the sinks)
# took test_bench_executor_with_sink from 61.7ms to ~19ms mean (3.3x)
# and test_bench_compiled_executor_with_sink from 34.3ms to ~5.6ms
# (6.1x); a bare-callable sink still takes the exact per-event path.
def test_bench_executor_with_sink(benchmark):
    program = build_alu_loop(8_000)

    def run():
        executor = Executor(program, seed=1)
        sink = CountingSink()
        executor.run(sink=sink)
        return sink.count

    assert benchmark(run) > 40_000


def test_bench_executor_with_legacy_sink(benchmark):
    """The compatibility path: a bare callable gets every event as a
    TraceEvent, exactly as before the columnar pipeline."""
    program = build_alu_loop(8_000)

    def run():
        executor = Executor(program, seed=1)
        count = [0]
        executor.run(sink=lambda e: count.__setitem__(0, count[0] + 1))
        return count[0]

    assert benchmark(run) > 40_000


# Tiered engines (this machine, PYTHONHASHSEED=0): the compiled tier
# runs the same 20k-iteration alu loop in ~2.7ms vs the interpreter's
# ~27ms (10x; 8.6x over the PR 4 23.5ms baseline above), with codegen
# amortized through the in-memory memo + on-disk CodegenStore.
def test_bench_compiled_executor(benchmark):
    from repro.engines import create_engine

    program = build_alu_loop()
    engine = create_engine("compiled")
    engine.executor(program, seed=1).run()  # compile outside the loop

    def run():
        executor = engine.executor(program, seed=1)
        executor.run()
        return executor.retired

    retired = benchmark(run)
    assert retired > 100_000


def test_bench_compiled_executor_with_sink(benchmark):
    from repro.engines import create_engine

    program = build_alu_loop(8_000)
    engine = create_engine("compiled")
    engine.executor(program, seed=1).run(sink=CountingSink())  # warm codegen

    def run():
        executor = engine.executor(program, seed=1)
        sink = CountingSink()
        executor.run(sink=sink)
        return sink.count

    assert benchmark(run) > 40_000


def test_bench_compiled_executor_with_harness(benchmark):
    """The full MPKI pipeline: compiled tier feeding a real Tournament
    harness through consume_batch — what every paper table exercises."""
    from repro.branch import PredictorHarness
    from repro.engines import create_engine

    program = build_alu_loop(8_000)
    engine = create_engine("compiled")
    engine.executor(program, seed=1).run(
        sink=PredictorHarness(Tournament())
    )  # warm codegen

    def run():
        executor = engine.executor(program, seed=1)
        harness = PredictorHarness(Tournament())
        executor.run(sink=harness)
        return harness.stats.instructions

    assert benchmark(run) > 40_000


def test_bench_vector_column_16_lanes(benchmark):
    """One 16-seed lockstep column of the pi workload (the Sweep's
    vector stage) — compare against 16 serial interpretations."""
    import pytest

    pytest.importorskip("numpy")
    from repro.engines.vector import execute_lanes

    program = get_workload("pi").build(0.25)
    seeds = list(range(16))

    def run():
        states, retired = execute_lanes(program, seeds)
        return sum(retired)

    assert benchmark(run) > 100_000


def test_bench_trace_capture(benchmark, tmp_path):
    """Interpret + record the committed path into a TraceStore."""
    from repro.sim import Session

    def run():
        store = tmp_path / "capture"
        result = (
            Session("pi", scale=0.25, seed=1)
            .predictors("tournament")
            .trace(store, mode="capture")
            .run()
        )
        return result.instructions

    assert benchmark(run) > 10_000


def test_bench_trace_replay(benchmark, tmp_path):
    """Replay a captured committed path (no interpretation)."""
    from repro.sim import Session

    store = tmp_path / "replay"
    Session("pi", scale=0.25, seed=1).trace(store).run()  # warm the store

    def run():
        result = (
            Session("pi", scale=0.25, seed=1)
            .predictors("tournament")
            .trace(store)
            .run()
        )
        assert result.trace_origin == "replay"
        return result.instructions

    assert benchmark(run) > 10_000


def test_bench_tournament_prediction(benchmark):
    rng = random.Random(3)
    stream = [(rng.randrange(64) * 2, rng.random() < 0.6) for _ in range(20_000)]

    def run():
        predictor = Tournament()
        for pc, taken in stream:
            predictor.predict(pc)
            predictor.update(pc, taken)
        return len(stream)

    benchmark(run)


def test_bench_tagescl_prediction(benchmark):
    rng = random.Random(3)
    stream = [(rng.randrange(64) * 2, rng.random() < 0.6) for _ in range(20_000)]

    def run():
        predictor = TageSCL()
        for pc, taken in stream:
            predictor.predict(pc)
            predictor.update(pc, taken)
        return len(stream)

    benchmark(run)


def test_bench_pbs_transactions(benchmark):
    rng = random.Random(5)
    values = [rng.random() for _ in range(20_000)]

    def run():
        engine = PBSEngine()
        hits = 0
        for value in values:
            group = ProbGroup(100, "lt", value < 0.5, 0.5, [40], [value])
            if engine.transact(group).mode == "hit":
                hits += 1
        return hits

    assert benchmark(run) > 15_000


def test_bench_full_stack_pi(benchmark):
    """One complete timed PBS simulation of the PI benchmark."""
    from repro.pipeline import OoOCore, four_wide

    workload = get_workload("pi")

    def run():
        core = OoOCore(four_wide(), TageSCL())
        workload.run(scale=0.25, seed=1, pbs=PBSEngine(), sink=core.feed)
        return core.finalize().ipc

    ipc = benchmark(run)
    assert ipc > 2.0
