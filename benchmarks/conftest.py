"""Shared configuration for the benchmark harness.

Every paper table/figure has one benchmark module that regenerates it and
asserts its acceptance criterion (DESIGN.md section 6).  The workload
scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.25): raise it for tighter, slower numbers::

    REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic end-to-end simulations, so repeated
    rounds only re-measure the same work; one round keeps the full
    harness (all tables and figures) at laptop scale.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
