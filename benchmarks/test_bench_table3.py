"""Regenerates Table III (randomness of the PBS value stream)."""

from conftest import run_once

from repro.experiments import table3


def test_bench_table3(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: table3.run(scale=max(bench_scale, 0.25), seeds=tuple(range(7))),
    )
    print()
    print(result.render())
    # Acceptance (the paper's bottom line): the PASS/WEAK/FAIL confidence
    # intervals of the original and PBS-ordered streams overlap.
    for row in result.rows:
        assert row["CIs overlap"] == "yes", row
