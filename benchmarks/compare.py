"""Compare a pytest-benchmark JSON run against the checked-in baseline.

Usage::

    python benchmarks/compare.py BENCH_baseline.json BENCH_ci.json \
        [--threshold 1.25] [--gate]

Prints one line per benchmark with the baseline mean, the current mean
and their ratio, and emits a warning (a ``::warning::`` annotation when
running under GitHub Actions) for every benchmark whose mean regressed
beyond ``--threshold``.  The comparison is **non-gating** by default —
CI runners and developer machines differ, so the numbers inform rather
than block; pass ``--gate`` to turn regressions into a non-zero exit.

After the full table, a **hot-path trajectory** section restates the
sink-fed benchmarks (with-sink executors, harness feed, trace capture
and replay) as baseline-over-current speedups — the rows the columnar
event pipeline is meant to move, surfaced so they are not lost in the
alphabetical listing.

New benchmarks (present in the current run, absent from the baseline)
and retired ones are reported but never warned about.
"""

from __future__ import annotations

import argparse
import json
import sys


#: Substrings selecting the sink-fed hot-path rows for the trajectory
#: section: every benchmark whose event stream crosses a sink.
TRAJECTORY_MARKERS = ("with_sink", "with_legacy_sink", "with_harness",
                      "trace_capture", "trace_replay")


def load_means(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in data.get("benchmarks", [])
    }


def print_trajectory(baseline: dict, current: dict) -> None:
    """The with-sink rows as speedups (baseline mean / current mean)."""
    rows = sorted(
        name for name in baseline | current
        if any(marker in name for marker in TRAJECTORY_MARKERS)
    )
    if not rows:
        return
    width = max(len(name) for name in rows)
    print()
    print("hot-path trajectory (sink-fed benchmarks, baseline/current):")
    for name in rows:
        base = baseline.get(name)
        now = current.get(name)
        if base is None or now is None or not now:
            status = "(new)" if base is None else "(retired)"
            print(f"  {name:{width}s}  {status}")
            continue
        print(
            f"  {name:{width}s}  {base:12.6f} -> {now:12.6f}"
            f"  {base / now:5.2f}x"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in BENCH_baseline.json")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=1.25,
        help="warn when current/baseline mean exceeds this (default 1.25)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit non-zero when any benchmark regresses past the threshold",
    )
    args = parser.parse_args(argv)

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    regressions = []

    width = max((len(name) for name in baseline | current), default=4)
    print(f"{'benchmark':{width}s}  {'baseline':>12s}  {'current':>12s}  ratio")
    for name in sorted(baseline | current):
        base = baseline.get(name)
        now = current.get(name)
        if base is None:
            print(f"{name:{width}s}  {'(new)':>12s}  {now:12.6f}      -")
            continue
        if now is None:
            print(f"{name:{width}s}  {base:12.6f}  {'(retired)':>12s}      -")
            continue
        ratio = now / base if base else float("inf")
        marker = ""
        if ratio > args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, ratio))
        print(f"{name:{width}s}  {base:12.6f}  {now:12.6f}  {ratio:5.2f}{marker}")

    print_trajectory(baseline, current)

    for name, ratio in regressions:
        print(
            f"::warning title=benchmark regression::{name} is {ratio:.2f}x "
            f"the baseline mean (threshold {args.threshold:.2f}x)"
        )
    if regressions:
        print(
            f"{len(regressions)} benchmark(s) regressed past "
            f"{args.threshold:.2f}x (non-gating unless --gate)",
            file=sys.stderr,
        )
        return 1 if args.gate else 0
    print("no regressions past the threshold", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
