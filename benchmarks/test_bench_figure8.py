"""Regenerates Figure 8 (normalized IPC, 8-wide core) and checks that the
wider pipeline benefits more from PBS than the 4-wide one (the paper's
13.8%/10.8% vs 9.0%/6.7% claim, in relative terms)."""

from conftest import run_once

from repro.experiments import figure7, figure8


def test_bench_figure8(benchmark, bench_scale):
    result = run_once(benchmark, lambda: figure8.run(scale=bench_scale))
    print()
    print(result.render())
    rows = result.rows[:-1]
    for row in rows:
        assert row["ipc_tage-sc-l+pbs"] >= row["ipc_tage-sc-l"], row

    # The wider core must gain at least as much from PBS (geomean).
    narrow = figure7.run(scale=bench_scale)
    wide_gain = result.rows[-1]["norm_tage-sc-l+pbs"] / result.rows[-1][
        "norm_tage-sc-l"
    ]
    narrow_gain = narrow.rows[-1]["norm_tage-sc-l+pbs"] / narrow.rows[-1][
        "norm_tage-sc-l"
    ]
    assert wide_gain >= 0.95 * narrow_gain
    print(f"\nPBS gain over TAGE-SC-L: 4-wide {narrow_gain:.3f}x, "
          f"8-wide {wide_gain:.3f}x")
