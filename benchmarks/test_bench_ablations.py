"""Regenerates the ablation studies (design choices beyond the paper)."""

from conftest import run_once

from repro.experiments import ablations


def test_bench_technique_comparison(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: ablations.technique_comparison(scale=bench_scale)
    )
    print()
    print(result.render())
    for row in result.rows:
        assert row["pbs_cycles"] < row["baseline_cycles"]


def test_bench_inflight_depth(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: ablations.inflight_depth_sweep(scale=bench_scale)
    )
    print()
    print(result.render())
    assert all(row["hit_rate"] > 0.9 for row in result.rows)


def test_bench_capacity(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: ablations.capacity_sweep(scale=bench_scale)
    )
    print()
    print(result.render())
    by_capacity = {row["prob_btb_entries"]: row for row in result.rows}
    assert by_capacity[4]["hit_rate"] > by_capacity[1]["hit_rate"]


def test_bench_context_support(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: ablations.context_support(scale=bench_scale)
    )
    print()
    print(result.render())
    assert all(row["hit_rate_with"] > 0.5 for row in result.rows)


def test_bench_predictor_sweep(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: ablations.predictor_sweep(scale=bench_scale)
    )
    print()
    print(result.render())
    # PBS reduces MPKI under every predictor in the sweep.
    assert all(row["reduction_%"] > 0 for row in result.rows)


def test_bench_history_insertion(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: ablations.history_insertion(scale=bench_scale)
    )
    print()
    print(result.render())
    bandit = next(r for r in result.rows if r["benchmark"] == "bandit")
    assert bandit["pbs_mpki_with_insert"] <= bandit["pbs_mpki_without_insert"]
