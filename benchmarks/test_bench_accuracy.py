"""Regenerates the Section VII-D output-accuracy study."""

from conftest import run_once

from repro.experiments import accuracy


def test_bench_accuracy(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: accuracy.run(scale=max(bench_scale, 0.25), seeds=tuple(range(8))),
    )
    print()
    print(result.render())
    # Acceptance: every benchmark's deviation is acceptable (zero-ish
    # error, or within Monte Carlo noise, or overlapping CIs for genetic).
    for row in result.rows:
        assert row["verdict"].startswith("ok"), row
