"""Regenerates Figure 7 (normalized IPC, 4-wide core)."""

from conftest import run_once

from repro.experiments import figure7


def test_bench_figure7(benchmark, bench_scale):
    result = run_once(benchmark, lambda: figure7.run(scale=bench_scale))
    print()
    print(result.render())
    rows = result.rows[:-1]
    # Acceptance: PBS improves IPC for every benchmark on both predictors.
    for row in rows:
        assert row["ipc_tournament+pbs"] >= row["ipc_tournament"], row
        assert row["ipc_tage-sc-l+pbs"] >= row["ipc_tage-sc-l"], row
    # Paper's return-on-investment claim: tournament+PBS >= plain TAGE-SC-L.
    geomean = result.rows[-1]
    assert geomean["norm_tournament+pbs"] > geomean["norm_tage-sc-l"]
    assert geomean["norm_tage-sc-l+pbs"] > 1.0
