"""Regenerates Figure 9 (branch predictor interference)."""

from conftest import run_once

from repro.experiments import figure9


def test_bench_figure9(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: figure9.run(scale=bench_scale, seeds=tuple(range(5))),
    )
    print()
    print(result.render())
    # Acceptance: interference exists for at least some benchmarks on the
    # small tournament predictor, and stays within a small percent range.
    tournament = [row["tournament_increase_%"] for row in result.rows]
    assert any(value > 0 for value in tournament)
    assert all(value < 60 for value in tournament)
