"""Benchmarks for the sweep-as-a-service round trip.

Times the submit -> stream -> reassemble overhead of the ``http``
executor against the direct ``remote`` executor on the same warm-cache
batch: both workers hold a pre-warmed result cache, so the measured cost
is pure coordination (HTTP parsing, job bookkeeping, lease dispatch,
NDJSON streaming) rather than simulation.  Non-gating via compare.py,
like every other benchmark here.
"""

from conftest import run_once

from repro.serve import Coordinator
from repro.sim import (
    CoordinatorWorker,
    HttpExecutor,
    RemoteExecutor,
    Sweep,
    WorkerServer,
)

GRID = dict(workloads=["pi"], seeds=(0, 1, 2, 3), modes=("base",))


def test_serve_http_round_trip_warm(benchmark, bench_scale, tmp_path):
    coordinator = Coordinator(port=0).start()
    worker = CoordinatorWorker(
        coordinator.address, processes=1, cache_dir=str(tmp_path)
    ).start()
    assert coordinator.wait_for_workers(1, timeout=10)
    executor = HttpExecutor(coordinator=coordinator.address)
    sweep = Sweep(scales=(bench_scale,), **GRID)
    try:
        sweep.run(executor=executor)  # warm the worker cache untimed
        result = run_once(benchmark, lambda: sweep.run(executor=executor))
    finally:
        worker.stop()
        coordinator.stop()
    assert result.cache_hits + result.simulated == 4


def test_serve_remote_round_trip_warm(benchmark, bench_scale, tmp_path):
    # The baseline the coordinator is measured against: the same batch
    # through a direct worker connection, no HTTP/job layer in between.
    server = WorkerServer(processes=1, cache_dir=str(tmp_path)).start()
    executor = RemoteExecutor(workers=[server.address_string])
    sweep = Sweep(scales=(bench_scale,), **GRID)
    try:
        sweep.run(executor=executor)  # warm the worker cache untimed
        result = run_once(benchmark, lambda: sweep.run(executor=executor))
    finally:
        executor.close()
        server.stop()
    assert result.cache_hits + result.simulated == 4
