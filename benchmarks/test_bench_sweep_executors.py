"""Benchmarks for the Sweep execution/caching layer itself.

These time the infrastructure the experiment benchmarks run on: a small
grid pushed through each executor backend, and a fully warmed sharded
cache replayed without simulation.  Tracking them in CI catches
regressions in dispatch overhead and cache lookup cost, independently of
the simulator's own speed.
"""

from conftest import run_once

from repro.sim import Sweep, WorkerPoolExecutor

GRID = dict(workloads=["pi"], seeds=(0, 1, 2, 3), modes=("base",))


def test_sweep_serial_executor(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: Sweep(scales=(bench_scale,), **GRID).run(executor="serial"),
    )
    assert result.simulated == 4


def test_sweep_worker_pool_executor(benchmark, bench_scale):
    def sweep_twice_one_pool():
        # Two batches through one persistent pool: the second pays no
        # worker startup, which is the point of the backend.
        with WorkerPoolExecutor(processes=2) as pool:
            first = Sweep(scales=(bench_scale,), **GRID).run(executor=pool)
            second = Sweep(
                scales=(bench_scale,), seeds=(4, 5, 6, 7),
                workloads=["pi"], modes=("base",),
            ).run(executor=pool)
        return first, second

    first, second = run_once(benchmark, sweep_twice_one_pool)
    assert first.simulated == second.simulated == 4


def test_sweep_sharded_cache_replay(benchmark, bench_scale, tmp_path):
    grid = Sweep(scales=(bench_scale,), cache_dir=tmp_path, **GRID)
    grid.run()  # warm the cache outside the timed region

    result = run_once(benchmark, lambda: grid.run())
    assert result.simulated == 0
    assert result.cache_hits == 4
