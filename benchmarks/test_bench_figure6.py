"""Regenerates Figure 6 (MPKI reduction through PBS)."""

from conftest import run_once

from repro.experiments import figure6


def test_bench_figure6(benchmark, bench_scale):
    result = run_once(benchmark, lambda: figure6.run(scale=bench_scale))
    print()
    print(result.render())
    rows = result.rows[:-1]  # drop the average row
    # Acceptance: PBS reduces MPKI everywhere; near-total reduction for
    # the benchmarks whose misses are dominated by probabilistic branches.
    for row in rows:
        assert row["tournament_reduction_%"] > 0, row
        assert row["tagescl_reduction_%"] > 0, row
    prob_dominated = {"dop", "greeks", "mc-integ", "pi"}
    for row in rows:
        if row["benchmark"] in prob_dominated:
            assert row["tagescl_reduction_%"] > 90
    average = result.rows[-1]
    assert average["tagescl_reduction_%"] > 30  # paper: 44.8%
