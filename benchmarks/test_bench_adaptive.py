"""Benchmarks for the adaptive autopilot driver.

Two things are tracked here:

* wall time of a whole refinement loop (the golden bandit case), so
  allocator/dispatch overhead regressions surface in the trajectory;
* **sample efficiency** — the acceptance criterion that adaptive
  refinement locates the bandit workload's PBS frontier with at most
  40% of the simulations the equivalent dense grid needs.  The dense
  equivalent is priced at its absolute floor: every cell of a uniform
  grid over the same scale range, at the finest resolution the adaptive
  run actually achieved around the frontier, sampled the minimum two
  pulls a confidence interval needs.  A real dense sweep would need
  far more pulls per cell to decide anything; beating the floor is the
  conservative claim.  Measured numbers are recorded in
  ``benchmarks/ADAPTIVE_efficiency.md``.
"""

import math

from conftest import run_once

from repro.sim import AdaptiveSweep

#: The golden bandit frontier case (tests/golden/ pins its full
#: trajectory; here we track its cost).
BANDIT_CASE = dict(
    workload="bandit",
    objective="pbs-output",
    objective_options={"key": "average_reward", "threshold": 0.8},
    scales=(0.01, 0.02, 0.05, 0.1),
    budget=64,
    seed=7,
    max_pulls=16,
)

MAX_DENSE_FRACTION = 0.40


def _dense_equivalent_specs(report, min_pulls=2):
    """Spec count of the cheapest dense grid with the same resolution.

    Uniform spacing equal to the finest adjacent-cell gap the adaptive
    run produced (that gap *is* the resolution of its frontier
    estimate), spanning the same scale range, at ``min_pulls`` samples
    per cell — the floor below which no interval exists at all.
    """
    sampled = [cell for cell in report.cells if cell.samples]
    gaps = [
        high.scale - low.scale
        for low, high in zip(sampled, sampled[1:])
    ]
    resolution = min(gaps)
    span = sampled[-1].scale - sampled[0].scale
    n_cells = int(math.floor(span / resolution + 0.5)) + 1
    return n_cells * min_pulls * len(report.modes)


def test_autopilot_bandit_frontier(benchmark):
    report = run_once(
        benchmark,
        lambda: AdaptiveSweep(**BANDIT_CASE).run(executor="serial"),
    )
    assert report.frontier, "the bandit reward frontier must be located"
    dense = _dense_equivalent_specs(report)
    fraction = report.budget_spent / dense
    benchmark.extra_info["budget_spent"] = report.budget_spent
    benchmark.extra_info["dense_equivalent_specs"] = dense
    benchmark.extra_info["dense_fraction"] = round(fraction, 4)
    benchmark.extra_info["frontier_estimate"] = report.frontier[0].estimate
    assert fraction <= MAX_DENSE_FRACTION, (
        f"adaptive spend {report.budget_spent} is {fraction:.0%} of the "
        f"dense-equivalent {dense} specs (limit {MAX_DENSE_FRACTION:.0%})"
    )


def test_autopilot_pi_accuracy(benchmark):
    report = run_once(
        benchmark,
        lambda: AdaptiveSweep(
            "pi",
            objective="pbs-accuracy",
            objective_options={"threshold": 0.002},
            scales=(0.01, 0.04, 0.16),
            budget=40,
            seed=1,
        ).run(executor="serial"),
    )
    assert report.frontier
    dense = _dense_equivalent_specs(report)
    benchmark.extra_info["budget_spent"] = report.budget_spent
    benchmark.extra_info["dense_equivalent_specs"] = dense
    assert report.budget_spent <= MAX_DENSE_FRACTION * dense
