import os
import re

from setuptools import find_packages, setup

HERE = os.path.dirname(os.path.abspath(__file__))

VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    open(os.path.join(HERE, "src", "repro", "__init__.py")).read(),
    re.M,
).group(1)

DESCRIPTION = (
    "Reproduction of 'Architectural Support for Probabilistic "
    "Branches' (MICRO 2018): PBS hardware model, ISA, simulators, "
    "predictors and the paper's full evaluation"
)

_readme = os.path.join(HERE, "README.md")
LONG_DESCRIPTION = (
    open(_readme).read() if os.path.exists(_readme) else DESCRIPTION
)

setup(
    name="repro-pbs",
    version=VERSION,
    description=DESCRIPTION,
    long_description=LONG_DESCRIPTION,
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.8",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "pbs-experiments = repro.experiments.runner:main",
            "repro-worker = repro.sim.remote:worker_main",
            "repro-coordinator = repro.serve.coordinator:coordinator_main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Hardware",
    ],
)
