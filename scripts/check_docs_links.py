#!/usr/bin/env python3
"""Check intra-repository links in the documentation suite.

Scans ``README.md`` and ``docs/*.md`` for markdown links and validates
every **relative** target:

* the linked file exists (relative to the linking file), and
* a ``#fragment`` on a markdown target matches a heading in that file,
  using GitHub's anchor slug rules (lowercase, spaces to dashes,
  punctuation dropped).

External links (``http(s)://``, ``mailto:``) are ignored — this checker
must work offline and never flake on someone else's server. Exit status
is the number of broken links, so CI can run it bare::

    python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for this suite; images share the form.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

#: Inline code spans and fenced blocks are stripped before link
#: extraction so example snippets cannot produce false positives.
FENCE_PATTERN = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE_PATTERN = re.compile(r"`[^`]*`")


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor transformation (the useful subset)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache: Dict[Path, Set[str]]) -> Set[str]:
    if path not in cache:
        text = path.read_text(encoding="utf-8")
        cache[path] = {
            github_slug(match.group(1))
            for match in HEADING_PATTERN.finditer(FENCE_PATTERN.sub("", text))
        }
    return cache[path]


def check_file(path: Path, cache: Dict[Path, Set[str]]) -> List[str]:
    text = path.read_text(encoding="utf-8")
    text = INLINE_CODE_PATTERN.sub("", FENCE_PATTERN.sub("", text))
    problems = []
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                                f"-> {target} (no such file)")
                continue
        else:
            resolved = path  # pure in-page fragment
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved, cache):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: broken anchor -> "
                    f"{target} (no heading slugs to '#{fragment}' in "
                    f"{resolved.relative_to(REPO_ROOT)})"
                )
    return problems


def main() -> int:
    sources = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    cache: Dict[Path, Set[str]] = {}
    problems: List[str] = []
    checked = 0
    for source in sources:
        if not source.exists():
            problems.append(f"missing documentation file: {source.name}")
            continue
        problems.extend(check_file(source, cache))
        checked += 1
    for problem in problems:
        print(f"BROKEN  {problem}", file=sys.stderr)
    print(f"[check_docs_links: {checked} files, {len(problems)} broken links]")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
